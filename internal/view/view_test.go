package view

import (
	"testing"

	"rchdroid/internal/bundle"
)

func TestBaseViewIdentity(t *testing.T) {
	tv := NewTextView(7, "hi")
	if tv.ID() != 7 || tv.TypeName() != "TextView" {
		t.Fatalf("id/type = %d/%s", tv.ID(), tv.TypeName())
	}
	if tv.Base().Self() != View(tv) {
		t.Fatal("Self() does not return the widget")
	}
	if tv.String() != "TextView#7" {
		t.Fatalf("String = %q", tv.String())
	}
}

func TestTreeConstructionAndWalk(t *testing.T) {
	root := NewLinearLayout(1)
	root.AddChild(NewTextView(2, "a"))
	inner := NewLinearLayout(3)
	inner.AddChild(NewButton(4, "b"))
	root.AddChild(inner)

	if Count(root) != 4 {
		t.Fatalf("Count = %d, want 4", Count(root))
	}
	byType := CountByType(root)
	if byType["LinearLayout"] != 2 || byType["TextView"] != 1 || byType["Button"] != 1 {
		t.Fatalf("CountByType = %v", byType)
	}
	if v := FindByID(root, 4); v == nil || v.TypeName() != "Button" {
		t.Fatalf("FindByID(4) = %v", v)
	}
	if FindByID(root, 99) != nil {
		t.Fatal("FindByID(99) found something")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	root := NewLinearLayout(1)
	for i := 2; i <= 5; i++ {
		root.AddChild(NewTextView(ID(i), ""))
	}
	visited := 0
	Walk(root, func(v View) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited = %d, want 3", visited)
	}
}

func TestParentChildLinks(t *testing.T) {
	g := NewLinearLayout(1)
	c := NewTextView(2, "")
	g.AddChild(c)
	if c.Base().Parent() != g {
		t.Fatal("parent not set")
	}
	g.RemoveChild(c)
	if c.Base().Parent() != nil {
		t.Fatal("parent not cleared on remove")
	}
	if len(g.Children()) != 0 {
		t.Fatal("child not removed")
	}
}

func TestDecorAttachPropagates(t *testing.T) {
	d := NewDecorView(1)
	c := NewTextView(2, "")
	d.AddChild(c)
	if c.Base().Attach() != d.AttachInfoRef() {
		t.Fatal("child does not share decor attach info")
	}
	// Children added to a nested group after attachment inherit it too.
	g := NewLinearLayout(3)
	d.AddChild(g)
	late := NewTextView(4, "")
	g.AddChild(late)
	if late.Base().Attach() != d.AttachInfoRef() {
		t.Fatal("late child not attached")
	}
}

func TestInvalidateMarksDirtyAndNotifiesHook(t *testing.T) {
	d := NewDecorView(1)
	tv := NewTextView(2, "x")
	d.AddChild(tv)
	var hooked []ID
	d.AttachInfoRef().OnInvalidate = func(v View) { hooked = append(hooked, v.ID()) }

	tv.SetText("y")
	if !tv.Base().Dirty() {
		t.Fatal("not dirty after SetText")
	}
	if len(hooked) != 1 || hooked[0] != 2 {
		t.Fatalf("hook calls = %v", hooked)
	}
	if d.AttachInfoRef().Invalidations < 1 {
		t.Fatal("invalidations not counted")
	}
	dirty := DirtyViews(d)
	found := false
	for _, v := range dirty {
		if v.ID() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DirtyViews = %v", dirty)
	}
	tv.Base().ClearDirty()
	if tv.Base().Dirty() {
		t.Fatal("ClearDirty failed")
	}
}

func TestReleasedViewRaisesNullPointer(t *testing.T) {
	d := NewDecorView(1)
	tv := NewTextView(2, "x")
	d.AddChild(tv)
	d.Release()
	if !tv.Base().Released() {
		t.Fatal("child not released")
	}
	defer func() {
		r := recover()
		npe, ok := r.(*NullPointerError)
		if !ok {
			t.Fatalf("recover = %v, want NullPointerError", r)
		}
		if npe.ViewID != 2 || npe.Op != "setText" {
			t.Fatalf("npe = %v", npe)
		}
		if npe.Error() == "" {
			t.Fatal("empty error message")
		}
	}()
	tv.SetText("boom")
}

func TestReleasedDecorRaisesWindowLeaked(t *testing.T) {
	d := NewDecorView(1)
	d.AttachToWindow()
	if !d.AttachedToWindow() {
		t.Fatal("not attached")
	}
	d.DetachFromWindow()
	d.Release()
	defer func() {
		if _, ok := recover().(*WindowLeakedError); !ok {
			t.Fatal("want WindowLeakedError")
		}
	}()
	d.AttachToWindow()
}

func TestShadowSunnyDispatch(t *testing.T) {
	d := NewDecorView(1)
	g := NewLinearLayout(2)
	tv := NewTextView(3, "")
	g.AddChild(tv)
	d.AddChild(g)

	d.DispatchShadowStateChanged(true)
	Walk(d, func(v View) bool {
		if !v.Base().Shadow() {
			t.Fatalf("%v not shadow", v)
		}
		return true
	})
	d.DispatchShadowStateChanged(false)
	d.DispatchSunnyStateChanged(true)
	if !tv.Base().Sunny() || tv.Base().Shadow() {
		t.Fatal("sunny dispatch failed")
	}
}

func TestSunnyPeerPointer(t *testing.T) {
	a := NewTextView(5, "old")
	b := NewTextView(5, "new")
	a.Base().SetSunnyPeer(b)
	if a.Base().SunnyPeer() != View(b) {
		t.Fatal("peer not stored")
	}
	if b.Base().SunnyPeer() != nil {
		t.Fatal("peer should default nil")
	}
}

func TestSaveRestoreRoundTripThroughBundle(t *testing.T) {
	d := NewDecorView(1)
	et := NewEditText(2, "draft")
	cb := NewCheckBox(3, "opt")
	lv := NewListView(4, []string{"a", "b", "c"})
	pb := NewProgressBar(5, 200)
	vv := NewVideoView(6, "video/intro")
	iv := NewImageView(7, "drawable/pic")
	for _, v := range []View{et, cb, lv, pb, vv, iv} {
		d.AddChild(v)
	}
	et.Type(" v2")
	cb.SetChecked(true)
	lv.PositionSelector(2)
	lv.SetItemChecked(1, true)
	lv.ScrollTo(40)
	pb.SetProgress(150)
	vv.SeekTo(9000)
	vv.SetPlaying(true)
	iv.SetDrawable("drawable/pic2")

	state := bundle.New()
	d.SaveState(state)

	// Fresh tree from the same "layout".
	d2 := NewDecorView(1)
	et2 := NewEditText(2, "draft")
	cb2 := NewCheckBox(3, "opt")
	lv2 := NewListView(4, []string{"a", "b", "c"})
	pb2 := NewProgressBar(5, 200)
	vv2 := NewVideoView(6, "video/intro")
	iv2 := NewImageView(7, "drawable/other")
	for _, v := range []View{et2, cb2, lv2, pb2, vv2, iv2} {
		d2.AddChild(v)
	}
	d2.RestoreState(state)

	if et2.Text() != "draft v2" || et2.Cursor() != len("draft v2") {
		t.Errorf("EditText restore: %q cursor %d", et2.Text(), et2.Cursor())
	}
	if !cb2.Checked() {
		t.Error("CheckBox restore failed")
	}
	if lv2.SelectorPosition() != 2 || !lv2.ItemChecked(1) || lv2.ScrollOffset() != 40 {
		t.Errorf("ListView restore: sel=%d checked=%v scroll=%d",
			lv2.SelectorPosition(), lv2.ItemChecked(1), lv2.ScrollOffset())
	}
	if pb2.Progress() != 150 || pb2.Max() != 200 {
		t.Errorf("ProgressBar restore: %d/%d", pb2.Progress(), pb2.Max())
	}
	if vv2.PositionMS() != 9000 || !vv2.Playing() {
		t.Errorf("VideoView restore: pos=%d playing=%v", vv2.PositionMS(), vv2.Playing())
	}
	if iv2.Drawable() != "drawable/pic2" {
		t.Errorf("ImageView restore: %q", iv2.Drawable())
	}
}

func TestNoIDViewsSaveNothing(t *testing.T) {
	d := NewDecorView(1)
	anon := NewTextView(NoID, "unsaved")
	d.AddChild(anon)
	state := bundle.New()
	d.SaveState(state)
	for _, k := range state.Keys() {
		if k == "view:0" {
			t.Fatal("NoID view saved state")
		}
	}
}

func TestRestoreWithoutSavedStateIsNoop(t *testing.T) {
	tv := NewTextView(9, "orig")
	tv.RestoreState(bundle.New())
	if tv.Text() != "orig" {
		t.Fatalf("text = %q", tv.Text())
	}
	tv.RestoreState(nil)
	if tv.Text() != "orig" {
		t.Fatal("nil restore changed state")
	}
}

func TestVisibilitySavedOnPlainViews(t *testing.T) {
	d := NewDecorView(1)
	g := NewLinearLayout(2)
	d.AddChild(g)
	g.SetVisible(false)
	state := bundle.New()
	d.SaveState(state)

	d2 := NewDecorView(1)
	g2 := NewLinearLayout(2)
	d2.AddChild(g2)
	d2.RestoreState(state)
	if g2.Visible() {
		t.Fatal("visibility not restored")
	}
}
