package view

import "fmt"

// This file implements deep-copying of settled view trees for the device
// snapshot/fork facility. A clone must be indistinguishable from the tree
// a fresh run would have produced at the same point, so every widget's
// value state (text, selection, progress, flags) is copied while anything
// that ties a tree to its old world — parent/attach pointers, sunny peers,
// click handlers, invalidate hooks — either is rewired into the clone or
// makes the tree unforkable (an error, so callers fall back to a fresh
// build rather than sharing state across worlds).

// CloneTree deep-copies the view tree rooted at v. If remap is non-nil,
// every original view is recorded against its clone so callers can
// translate retained pointers into the new tree. (CloneDecor tracks a
// single retained pointer without the map — the fork hot path.)
//
// CloneTree fails when the tree is entangled with its world: a released
// view, a Button with a click handler, an essence-mapped sunny peer, or a
// DecorView with an OnInvalidate hook installed. Those only appear once
// chaos/core arms are live or a flip is in flight — never in a settled
// pre-chaos world.
func CloneTree(v View, remap map[View]View) (View, error) {
	return (&cloner{remap: remap}).clone(v)
}

// cloner carries the pointer-translation state through one deep copy:
// either the full remap map (CloneTree) or a single want→got pair
// (CloneDecor, which forks thousands of trees per sweep and must not
// pay a map allocation per activity).
type cloner struct {
	remap map[View]View
	want  View
	got   View
}

func (c *cloner) clone(v View) (View, error) {
	b := v.Base()
	if b.released {
		return nil, fmt.Errorf("view: clone of released %s", b)
	}
	if b.sunnyPeer != nil {
		return nil, fmt.Errorf("view: clone of %s with sunny peer installed", b)
	}

	var out View
	switch w := v.(type) {
	case *DecorView:
		if w.attachInfo.OnInvalidate != nil {
			return nil, fmt.Errorf("view: clone of %s with OnInvalidate hook installed", b)
		}
		cp := *w
		cp.children = nil
		out = &cp
	case *ViewGroup:
		cp := *w
		cp.children = nil
		out = &cp
	case *TextView:
		cp := *w
		out = &cp
	case *EditText:
		cp := *w
		out = &cp
	case *Button:
		if w.onClick != nil {
			return nil, fmt.Errorf("view: clone of %s with click handler installed", b)
		}
		cp := *w
		out = &cp
	case *CheckBox:
		cp := *w
		out = &cp
	case *Switch:
		cp := *w
		out = &cp
	case *CustomTextView:
		cp := *w
		out = &cp
	case *ImageView:
		cp := *w
		out = &cp
	case *AbsListView:
		cp := *w
		cloneListState(&cp)
		out = &cp
	case *ListView:
		cp := *w
		cloneListState(&cp.AbsListView)
		out = &cp
	case *GridView:
		cp := *w
		cloneListState(&cp.AbsListView)
		out = &cp
	case *ScrollView:
		cp := *w
		cloneListState(&cp.AbsListView)
		out = &cp
	case *Spinner:
		cp := *w
		cloneListState(&cp.AbsListView)
		out = &cp
	case *VideoView:
		cp := *w
		out = &cp
	case *ProgressBar:
		cp := *w
		out = &cp
	case *SeekBar:
		cp := *w
		out = &cp
	case *RatingBar:
		cp := *w
		out = &cp
	case *Chronometer:
		cp := *w
		out = &cp
	default:
		return nil, fmt.Errorf("view: no clone support for %T", v)
	}

	nb := out.Base()
	nb.self = out
	nb.parent = nil
	nb.attach = nil
	nb.sunnyPeer = nil
	if c.remap != nil {
		c.remap[v] = out
	}
	if v == c.want {
		c.got = out
	}

	if src, ok := v.(Container); ok {
		group := containerGroup(out)
		for _, child := range src.Children() {
			nc, err := c.clone(child)
			if err != nil {
				return nil, err
			}
			nc.Base().parent = group
			group.children = append(group.children, nc)
		}
	}

	// A cloned decor owns its copied AttachInfo; re-point the whole
	// subtree at it, exactly as AddChild did in the original.
	if d, ok := out.(*DecorView); ok {
		attachSubtree(d, &d.attachInfo)
	}
	return out, nil
}

// CloneDecor is CloneTree specialised to a window root, translating the
// one retained pointer an activity holds into its tree (want may be nil).
// It returns the cloned decor and want's clone.
func CloneDecor(d *DecorView, want View) (*DecorView, View, error) {
	c := &cloner{want: want}
	out, err := c.clone(d)
	if err != nil {
		return nil, nil, err
	}
	return out.(*DecorView), c.got, nil
}

// cloneListState replaces an AbsListView's shared reference state (adapter
// items, checked set) with private copies.
func cloneListState(l *AbsListView) {
	items := make([]string, len(l.items))
	copy(items, l.items)
	l.items = items
	checked := make(map[int]bool, len(l.checkedItems))
	for k, v := range l.checkedItems {
		checked[k] = v
	}
	l.checkedItems = checked
}

// containerGroup returns the *ViewGroup a cloned container's children hang
// off — the embedded group for a DecorView, the group itself otherwise —
// matching the parent pointer AddChild would have set.
func containerGroup(v View) *ViewGroup {
	switch g := v.(type) {
	case *DecorView:
		return &g.ViewGroup
	case *ViewGroup:
		return g
	}
	panic(fmt.Sprintf("view: %T is not a container", v))
}
