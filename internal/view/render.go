package view

import (
	"fmt"
	"strings"
)

// Dump renders a view tree as indented text with each widget's essential
// attributes — the reproduction's screenshot. Fig 13's before/after
// comparisons and the rchsim tool use it to show state loss visually.
func Dump(root View) string {
	var sb strings.Builder
	dumpInto(&sb, root, 0)
	return sb.String()
}

func dumpInto(sb *strings.Builder, v View, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(describe(v))
	sb.WriteByte('\n')
	if g, ok := v.(Container); ok {
		for _, c := range g.Children() {
			dumpInto(sb, c, depth+1)
		}
	}
}

// describe renders one widget's line: type, id, state attributes and
// flags.
func describe(v View) string {
	b := v.Base()
	var attrs []string
	switch w := v.(type) {
	case *EditText:
		attrs = append(attrs, fmt.Sprintf("text=%q cursor=%d", w.Text(), w.Cursor()))
	case *Button:
		attrs = append(attrs, fmt.Sprintf("label=%q", w.Text()))
	case *CheckBox:
		attrs = append(attrs, fmt.Sprintf("label=%q checked=%v", w.Text(), w.Checked()))
	case *Switch:
		attrs = append(attrs, fmt.Sprintf("label=%q on=%v", w.Text(), w.On()))
	case *ImageView:
		attrs = append(attrs, fmt.Sprintf("drawable=%q", w.Drawable()))
	case *VideoView:
		attrs = append(attrs, fmt.Sprintf("uri=%q pos=%dms playing=%v", w.VideoURI(), w.PositionMS(), w.Playing()))
	case *SeekBar:
		attrs = append(attrs, fmt.Sprintf("progress=%d/%d", w.Progress(), w.Max()))
	case *RatingBar:
		attrs = append(attrs, fmt.Sprintf("rating=%d/%d", w.Rating(), w.Max()))
	case *ProgressBar:
		attrs = append(attrs, fmt.Sprintf("progress=%d/%d", w.Progress(), w.Max()))
	case *Chronometer:
		attrs = append(attrs, fmt.Sprintf("elapsed=%ds running=%v", w.ElapsedSec(), w.Running()))
	case *Spinner:
		attrs = append(attrs, fmt.Sprintf("selected=%q", w.Selected()))
	default:
		if l, ok := v.(interface {
			SelectorPosition() int
			ScrollOffset() int
			Items() []string
		}); ok {
			attrs = append(attrs, fmt.Sprintf("items=%d selected=%d scroll=%d",
				len(l.Items()), l.SelectorPosition(), l.ScrollOffset()))
		} else if tv, ok := v.(interface{ Text() string }); ok {
			attrs = append(attrs, fmt.Sprintf("text=%q", tv.Text()))
		}
	}
	var flags []string
	if !b.Visible() {
		flags = append(flags, "hidden")
	}
	if b.Released() {
		flags = append(flags, "RELEASED")
	}
	if b.Shadow() {
		flags = append(flags, "shadow")
	}
	if b.Sunny() {
		flags = append(flags, "sunny")
	}
	line := fmt.Sprintf("%s#%d", v.TypeName(), v.ID())
	if len(attrs) > 0 {
		line += " " + strings.Join(attrs, " ")
	}
	if len(flags) > 0 {
		line += " [" + strings.Join(flags, ",") + "]"
	}
	return line
}
