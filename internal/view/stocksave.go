package view

import "rchdroid/internal/bundle"

// StockSaver is implemented by widgets whose state stock Android's
// restart path persists automatically. The subset is deliberately
// narrower than SaveState: real Android saves EditText text, CheckBox
// checked state and list scroll positions, but NOT programmatic TextView
// text, ImageView drawables, list selections, ProgressBar values or
// VideoView positions — which is exactly why the Table 3 / Table 5 apps
// lose state on a restart while RCHDroid's full shadow snapshot (§3.3,
// "all view states") preserves it.
type StockSaver interface {
	// SaveStockState writes the stock-persisted subset of the widget's
	// state into out, under the same keys RestoreState reads.
	SaveStockState(out *bundle.Bundle)
}

// SaveStockState implements StockSaver for EditText: text and cursor are
// saved (android.widget.TextView.onSaveInstanceState with an editable).
func (e *EditText) SaveStockState(out *bundle.Bundle) {
	if sec := e.saveSection(out); sec != nil {
		sec.PutString("text", e.text)
		sec.PutInt("cursor", int64(e.cursor))
	}
}

// SaveStockState implements StockSaver for CheckBox: the checked flag is
// saved (CompoundButton.onSaveInstanceState).
func (c *CheckBox) SaveStockState(out *bundle.Bundle) {
	if sec := c.saveSection(out); sec != nil {
		sec.PutBool("checked", c.checked)
	}
}

// SaveStockTree walks the tree and saves the stock-persisted subset of
// every widget that has one — the saved-instance-state bundle a stock
// restart carries across.
func SaveStockTree(root View, out *bundle.Bundle) {
	Walk(root, func(v View) bool {
		if ss, ok := v.(StockSaver); ok {
			ss.SaveStockState(out)
		}
		return true
	})
}
