package view

import "rchdroid/internal/bundle"

// This file defines the concrete widget types of Table 1. Each widget
// carries the attributes its migration policy transfers:
//
//	TextView     → setText
//	ImageView    → setDrawable
//	AbsListView  → positionSelector / setItemChecked
//	VideoView    → setVideoURI
//	ProgressBar  → setProgress
//
// Sub-types (EditText, Button, ListView, GridView, ScrollView, SeekBar,
// CheckBox and user-defined views) embed a basic type and are migrated by
// the policy of the type they inherit from, exactly as §3.3 describes.

// ─── TextView family ────────────────────────────────────────────────────

// TextView displays text.
type TextView struct {
	BaseView
	text string
	hint string
	// textModified marks text set programmatically after inflation.
	// Only modified text is part of the saved state: static layout text
	// must re-resolve from resources under the new configuration.
	textModified bool
}

// NewTextView returns a TextView with the given id and initial text.
func NewTextView(id ID, text string) *TextView {
	t := &TextView{text: text}
	t.init(t, "TextView", id)
	return t
}

// newTextLike builds a TextView-derived widget for embedding.
func newTextLike(self View, typeName string, id ID, text string) TextView {
	t := TextView{text: text}
	t.init(self, typeName, id)
	return t
}

// Text returns the current text.
func (t *TextView) Text() string { return t.text }

// SetText replaces the text and invalidates.
func (t *TextView) SetText(s string) {
	t.checkAlive("setText")
	t.text = s
	t.textModified = true
	t.Invalidate()
}

// Hint returns the placeholder hint.
func (t *TextView) Hint() string { return t.hint }

// SetHint replaces the hint without invalidating (hints are static).
func (t *TextView) SetHint(s string) { t.hint = s }

// SaveState stores the text, but only when it was set programmatically;
// static layout text stays with the layout so a configuration change can
// re-resolve it.
func (t *TextView) SaveState(out *bundle.Bundle) {
	if sec := t.saveSection(out); sec != nil {
		sec.PutBool("visible", t.visible)
		if t.textModified {
			sec.PutString("text", t.text)
		}
	}
}

// RestoreState restores the text if the saved state carried one.
func (t *TextView) RestoreState(in *bundle.Bundle) {
	if sec := t.restoreSection(in); sec != nil {
		t.visible = sec.GetBool("visible", t.visible)
		if sec.Has("text") {
			t.text = sec.GetString("text", t.text)
			t.textModified = true
		}
	}
}

// EditText is a user-editable TextView with a cursor.
type EditText struct {
	TextView
	cursor int
}

// NewEditText returns an EditText with the given id and initial text.
func NewEditText(id ID, text string) *EditText {
	e := &EditText{cursor: len(text)}
	e.TextView = newTextLike(e, "EditText", id, text)
	return e
}

// Cursor returns the cursor position.
func (e *EditText) Cursor() int { return e.cursor }

// SetCursor moves the cursor.
func (e *EditText) SetCursor(pos int) {
	e.checkAlive("setSelection")
	if pos < 0 {
		pos = 0
	}
	if pos > len(e.text) {
		pos = len(e.text)
	}
	e.cursor = pos
}

// Type appends text at the cursor, as the soft keyboard would.
func (e *EditText) Type(s string) {
	e.checkAlive("append")
	e.text = e.text[:e.cursor] + s + e.text[e.cursor:]
	e.cursor += len(s)
	e.Invalidate()
}

// SaveState stores text and cursor.
func (e *EditText) SaveState(out *bundle.Bundle) {
	if sec := e.saveSection(out); sec != nil {
		sec.PutBool("visible", e.visible)
		sec.PutString("text", e.text)
		sec.PutInt("cursor", int64(e.cursor))
	}
}

// RestoreState restores text and cursor.
func (e *EditText) RestoreState(in *bundle.Bundle) {
	if sec := e.restoreSection(in); sec != nil {
		e.visible = sec.GetBool("visible", e.visible)
		e.text = sec.GetString("text", e.text)
		e.cursor = int(sec.GetInt("cursor", int64(e.cursor)))
	}
}

// Button is a clickable TextView.
type Button struct {
	TextView
	onClick func()
	clicks  int
}

// NewButton returns a Button with the given id and label.
func NewButton(id ID, label string) *Button {
	b := &Button{}
	b.TextView = newTextLike(b, "Button", id, label)
	return b
}

// SetOnClick installs the click handler.
func (b *Button) SetOnClick(fn func()) { b.onClick = fn }

// Click simulates a user tap.
func (b *Button) Click() {
	b.checkAlive("performClick")
	b.clicks++
	if b.onClick != nil {
		b.onClick()
	}
}

// Clicks returns how many times the button was tapped.
func (b *Button) Clicks() int { return b.clicks }

// CheckBox is a TextView with a checked flag.
type CheckBox struct {
	TextView
	checked bool
}

// NewCheckBox returns a CheckBox with the given id and label.
func NewCheckBox(id ID, label string) *CheckBox {
	c := &CheckBox{}
	c.TextView = newTextLike(c, "CheckBox", id, label)
	return c
}

// Checked reports the checked flag.
func (c *CheckBox) Checked() bool { return c.checked }

// SetChecked sets the flag and invalidates.
func (c *CheckBox) SetChecked(v bool) {
	c.checkAlive("setChecked")
	c.checked = v
	c.Invalidate()
}

// SaveState stores the checked flag (and the label only if it was
// relabelled programmatically).
func (c *CheckBox) SaveState(out *bundle.Bundle) {
	if sec := c.saveSection(out); sec != nil {
		sec.PutBool("visible", c.visible)
		if c.textModified {
			sec.PutString("text", c.text)
		}
		sec.PutBool("checked", c.checked)
	}
}

// RestoreState restores checked flag and any relabelled text.
func (c *CheckBox) RestoreState(in *bundle.Bundle) {
	if sec := c.restoreSection(in); sec != nil {
		c.visible = sec.GetBool("visible", c.visible)
		if sec.Has("text") {
			c.text = sec.GetString("text", c.text)
			c.textModified = true
		}
		c.checked = sec.GetBool("checked", c.checked)
	}
}

// ─── ImageView ──────────────────────────────────────────────────────────

// ImageView displays an image resource.
type ImageView struct {
	BaseView
	drawable string // resource name, e.g. "drawable/photo1"
	// drawableModified marks drawables swapped in programmatically; only
	// those belong to the saved state (layout drawables re-resolve).
	drawableModified bool
}

// NewImageView returns an ImageView showing drawable.
func NewImageView(id ID, drawable string) *ImageView {
	v := &ImageView{drawable: drawable}
	v.init(v, "ImageView", id)
	return v
}

// Drawable returns the current image resource name.
func (v *ImageView) Drawable() string { return v.drawable }

// SetDrawable swaps the image and invalidates (the Table 1 policy target).
func (v *ImageView) SetDrawable(res string) {
	v.checkAlive("setImageDrawable")
	v.drawable = res
	v.drawableModified = true
	v.Invalidate()
}

// SaveState stores the drawable reference when it was swapped in
// programmatically.
func (v *ImageView) SaveState(out *bundle.Bundle) {
	if sec := v.saveSection(out); sec != nil {
		sec.PutBool("visible", v.visible)
		if v.drawableModified {
			sec.PutString("drawable", v.drawable)
		}
	}
}

// RestoreState restores a programmatic drawable if one was saved.
func (v *ImageView) RestoreState(in *bundle.Bundle) {
	if sec := v.restoreSection(in); sec != nil {
		v.visible = sec.GetBool("visible", v.visible)
		if sec.Has("drawable") {
			v.drawable = sec.GetString("drawable", v.drawable)
			v.drawableModified = true
		}
	}
}

// ─── AbsListView family ─────────────────────────────────────────────────

// AbsListView displays a scrollable collection with a selection and
// per-item checked state.
type AbsListView struct {
	BaseView
	items        []string
	selectorPos  int
	checkedItems map[int]bool
	scrollOffset int
}

func newListLike(self View, typeName string, id ID, items []string) AbsListView {
	cp := make([]string, len(items))
	copy(cp, items)
	l := AbsListView{items: cp, selectorPos: -1, checkedItems: make(map[int]bool)}
	l.init(self, typeName, id)
	return l
}

// NewAbsListView returns a plain AbsListView (usually use ListView etc.).
func NewAbsListView(id ID, items []string) *AbsListView {
	l := &AbsListView{}
	*l = newListLike(l, "AbsListView", id, items)
	return l
}

// Items returns the adapter items.
func (l *AbsListView) Items() []string { return l.items }

// SetItems replaces the adapter contents.
func (l *AbsListView) SetItems(items []string) {
	l.checkAlive("setAdapter")
	cp := make([]string, len(items))
	copy(cp, items)
	l.items = cp
	if l.selectorPos >= len(cp) {
		l.selectorPos = -1
	}
	l.Invalidate()
}

// SelectorPosition returns the selected index, or -1.
func (l *AbsListView) SelectorPosition() int { return l.selectorPos }

// PositionSelector moves the selection (the Table 1 policy target).
func (l *AbsListView) PositionSelector(pos int) {
	l.checkAlive("positionSelector")
	if pos < -1 || pos >= len(l.items) {
		pos = -1
	}
	l.selectorPos = pos
	l.Invalidate()
}

// SelectedItem returns the selected item text, or "".
func (l *AbsListView) SelectedItem() string {
	if l.selectorPos < 0 || l.selectorPos >= len(l.items) {
		return ""
	}
	return l.items[l.selectorPos]
}

// ItemChecked reports whether item pos is checked.
func (l *AbsListView) ItemChecked(pos int) bool { return l.checkedItems[pos] }

// SetItemChecked toggles an item's checked state (Table 1 policy target).
func (l *AbsListView) SetItemChecked(pos int, on bool) {
	l.checkAlive("setItemChecked")
	if on {
		l.checkedItems[pos] = true
	} else {
		delete(l.checkedItems, pos)
	}
	l.Invalidate()
}

// CheckedPositions returns the sorted checked indices.
func (l *AbsListView) CheckedPositions() []int {
	out := make([]int, 0, len(l.checkedItems))
	for p := range l.checkedItems {
		out = append(out, p)
	}
	// insertion sort; the sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ScrollOffset returns the scroll position.
func (l *AbsListView) ScrollOffset() int { return l.scrollOffset }

// ScrollTo sets the scroll position.
func (l *AbsListView) ScrollTo(off int) {
	l.checkAlive("scrollTo")
	if off < 0 {
		off = 0
	}
	l.scrollOffset = off
	l.Invalidate()
}

// SaveState stores selection, checked set and scroll offset.
func (l *AbsListView) SaveState(out *bundle.Bundle) {
	if sec := l.saveSection(out); sec != nil {
		sec.PutBool("visible", l.visible)
		sec.PutInt("selector", int64(l.selectorPos))
		sec.PutInt("scroll", int64(l.scrollOffset))
		checked := l.CheckedPositions()
		ints := make([]int64, len(checked))
		for i, p := range checked {
			ints[i] = int64(p)
		}
		sec.PutIntSlice("checked", ints)
	}
}

// RestoreState restores selection, checked set and scroll offset.
func (l *AbsListView) RestoreState(in *bundle.Bundle) {
	if sec := l.restoreSection(in); sec != nil {
		l.visible = sec.GetBool("visible", l.visible)
		l.selectorPos = int(sec.GetInt("selector", int64(l.selectorPos)))
		l.scrollOffset = int(sec.GetInt("scroll", int64(l.scrollOffset)))
		if cs := sec.GetIntSlice("checked"); cs != nil {
			l.checkedItems = make(map[int]bool, len(cs))
			for _, p := range cs {
				l.checkedItems[int(p)] = true
			}
		}
	}
}

// ListView is a vertical AbsListView.
type ListView struct{ AbsListView }

// NewListView returns a ListView with the given items.
func NewListView(id ID, items []string) *ListView {
	l := &ListView{}
	l.AbsListView = newListLike(l, "ListView", id, items)
	return l
}

// GridView is a grid AbsListView.
type GridView struct{ AbsListView }

// NewGridView returns a GridView with the given items.
func NewGridView(id ID, items []string) *GridView {
	l := &GridView{}
	l.AbsListView = newListLike(l, "GridView", id, items)
	return l
}

// ScrollView is modelled as an AbsListView per the paper's Table 1
// grouping ("AbsListView typed views, such as ScrollView and GridView").
type ScrollView struct{ AbsListView }

// NewScrollView returns a ScrollView (items model the scrollable content
// blocks).
func NewScrollView(id ID, items []string) *ScrollView {
	l := &ScrollView{}
	l.AbsListView = newListLike(l, "ScrollView", id, items)
	return l
}

// ─── VideoView ──────────────────────────────────────────────────────────

// VideoView plays a video file.
type VideoView struct {
	BaseView
	videoURI   string
	positionMS int
	playing    bool
}

// NewVideoView returns a VideoView for the given URI.
func NewVideoView(id ID, uri string) *VideoView {
	v := &VideoView{videoURI: uri}
	v.init(v, "VideoView", id)
	return v
}

// VideoURI returns the current source URI.
func (v *VideoView) VideoURI() string { return v.videoURI }

// SetVideoURI swaps the source (Table 1 policy target).
func (v *VideoView) SetVideoURI(uri string) {
	v.checkAlive("setVideoURI")
	v.videoURI = uri
	v.positionMS = 0
	v.Invalidate()
}

// PositionMS returns the playback position.
func (v *VideoView) PositionMS() int { return v.positionMS }

// SeekTo moves the playback position.
func (v *VideoView) SeekTo(ms int) {
	v.checkAlive("seekTo")
	if ms < 0 {
		ms = 0
	}
	v.positionMS = ms
}

// Playing reports whether playback is active.
func (v *VideoView) Playing() bool { return v.playing }

// SetPlaying starts or pauses playback.
func (v *VideoView) SetPlaying(on bool) {
	v.checkAlive("start")
	v.playing = on
}

// SaveState stores URI and position.
func (v *VideoView) SaveState(out *bundle.Bundle) {
	if sec := v.saveSection(out); sec != nil {
		sec.PutBool("visible", v.visible)
		sec.PutString("uri", v.videoURI)
		sec.PutInt("pos", int64(v.positionMS))
		sec.PutBool("playing", v.playing)
	}
}

// RestoreState restores URI and position.
func (v *VideoView) RestoreState(in *bundle.Bundle) {
	if sec := v.restoreSection(in); sec != nil {
		v.visible = sec.GetBool("visible", v.visible)
		v.videoURI = sec.GetString("uri", v.videoURI)
		v.positionMS = int(sec.GetInt("pos", int64(v.positionMS)))
		v.playing = sec.GetBool("playing", v.playing)
	}
}

// ─── ProgressBar family ─────────────────────────────────────────────────

// ProgressBar indicates the progress of an operation.
type ProgressBar struct {
	BaseView
	progress int
	max      int
}

func newProgressLike(self View, typeName string, id ID, max int) ProgressBar {
	if max <= 0 {
		max = 100
	}
	p := ProgressBar{max: max}
	p.init(self, typeName, id)
	return p
}

// NewProgressBar returns a ProgressBar with the given range maximum.
func NewProgressBar(id ID, max int) *ProgressBar {
	p := &ProgressBar{}
	*p = newProgressLike(p, "ProgressBar", id, max)
	return p
}

// Progress returns the current value.
func (p *ProgressBar) Progress() int { return p.progress }

// Max returns the range maximum.
func (p *ProgressBar) Max() int { return p.max }

// SetProgress clamps and sets the value (Table 1 policy target).
func (p *ProgressBar) SetProgress(v int) {
	p.checkAlive("setProgress")
	if v < 0 {
		v = 0
	}
	if v > p.max {
		v = p.max
	}
	p.progress = v
	p.Invalidate()
}

// SaveState stores progress and max.
func (p *ProgressBar) SaveState(out *bundle.Bundle) {
	if sec := p.saveSection(out); sec != nil {
		sec.PutBool("visible", p.visible)
		sec.PutInt("progress", int64(p.progress))
		sec.PutInt("max", int64(p.max))
	}
}

// RestoreState restores progress and max.
func (p *ProgressBar) RestoreState(in *bundle.Bundle) {
	if sec := p.restoreSection(in); sec != nil {
		p.visible = sec.GetBool("visible", p.visible)
		p.progress = int(sec.GetInt("progress", int64(p.progress)))
		p.max = int(sec.GetInt("max", int64(p.max)))
	}
}

// SeekBar is a draggable ProgressBar.
type SeekBar struct{ ProgressBar }

// NewSeekBar returns a SeekBar with the given range maximum.
func NewSeekBar(id ID, max int) *SeekBar {
	s := &SeekBar{}
	s.ProgressBar = newProgressLike(s, "SeekBar", id, max)
	return s
}

// ─── User-defined views ─────────────────────────────────────────────────

// CustomTextView represents an app-defined widget inheriting TextView; it
// exists to verify that user-defined views are migrated according to the
// basic type they extend (§3.3).
type CustomTextView struct {
	TextView
	// Extra is app-private state that Android knows nothing about; it is
	// saved only if the app's own onSaveInstanceState stores it.
	Extra string
}

// NewCustomTextView returns a user-defined TextView subclass.
func NewCustomTextView(id ID, text string) *CustomTextView {
	c := &CustomTextView{}
	c.TextView = newTextLike(c, "CustomTextView", id, text)
	return c
}
