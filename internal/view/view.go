// Package view reimplements the slice of Android's view system the paper
// manipulates: a typed view tree rooted at a decor view, per-view saved
// state, the invalidate path (the hook point for RCHDroid's lazy
// migration), and the shadow/sunny flags RCHDroid adds to the View class.
//
// Crash semantics follow Android: once an activity is destroyed its views
// are released, and any later mutation — typically an AsyncTask callback —
// raises a NullPointerError, which the app layer turns into an app crash
// (the Fig 1 / Fig 9 failure mode).
package view

import (
	"fmt"

	"rchdroid/internal/bundle"
)

// ID identifies a view within an activity, like R.id.*. NoID views exist
// but are skipped by state saving and essence mapping, as on Android.
type ID int

// NoID marks a view without an identifier.
const NoID ID = 0

// NullPointerError is the simulated NullPointerException raised when app
// code touches a view whose tree has been released by an activity restart.
type NullPointerError struct {
	ViewID   ID
	ViewType string
	Op       string
}

func (e *NullPointerError) Error() string {
	return fmt.Sprintf("NullPointerException: %s on released %s (id %d)", e.Op, e.ViewType, e.ViewID)
}

// WindowLeakedError is the simulated WindowLeakedException raised when a
// released window (decor view) is asked to re-attach or redraw.
type WindowLeakedError struct {
	ViewID ID
}

func (e *WindowLeakedError) Error() string {
	return fmt.Sprintf("WindowLeakedException: window of decor view %d has leaked", e.ViewID)
}

// AttachInfo is shared by every view attached to one window, mirroring
// View.AttachInfo. RCHDroid installs OnInvalidate here: the modified
// View.invalidate calls it with the view being updated, which is where
// lazy migration intercepts asynchronous updates (§3.3).
type AttachInfo struct {
	// OnInvalidate observes every invalidate call. May be nil.
	OnInvalidate func(v View)
	// Invalidations counts invalidate calls for CPU accounting.
	Invalidations int
}

// View is the behaviour common to every node in the tree.
type View interface {
	// ID returns the view's identifier (NoID if none).
	ID() ID
	// TypeName returns the concrete widget type, e.g. "TextView".
	TypeName() string
	// Base exposes the embedded BaseView for framework bookkeeping.
	Base() *BaseView
	// SaveState writes the view's instance state into b (its own section).
	SaveState(b *bundle.Bundle)
	// RestoreState reads the view's instance state from b.
	RestoreState(b *bundle.Bundle)
}

// BaseView carries the fields every widget shares. Concrete widgets embed
// it. The Shadow/Sunny fields and the sunny-peer pointer are the RCHDroid
// additions to the View class (Table 2, 79 LoC).
type BaseView struct {
	id       ID
	typeName string
	parent   *ViewGroup
	attach   *AttachInfo
	self     View // the embedding widget, for callbacks and peers

	released bool
	dirty    bool
	visible  bool

	// RCHDroid state.
	shadow    bool
	sunny     bool
	sunnyPeer View
}

func (b *BaseView) init(self View, typeName string, id ID) {
	b.self = self
	b.typeName = typeName
	b.id = id
	b.visible = true
}

// ID implements View.
func (b *BaseView) ID() ID { return b.id }

// TypeName implements View.
func (b *BaseView) TypeName() string { return b.typeName }

// Base implements View.
func (b *BaseView) Base() *BaseView { return b }

// Self returns the concrete widget embedding this BaseView.
func (b *BaseView) Self() View { return b.self }

// Parent returns the containing view group, or nil at the root.
func (b *BaseView) Parent() *ViewGroup { return b.parent }

// Attach returns the window attach info, or nil when detached.
func (b *BaseView) Attach() *AttachInfo { return b.attach }

// Visible reports the visibility flag.
func (b *BaseView) Visible() bool { return b.visible }

// SetVisible changes the visibility flag and invalidates.
func (b *BaseView) SetVisible(v bool) {
	b.checkAlive("setVisibility")
	b.visible = v
	b.Invalidate()
}

// Dirty reports whether the view was invalidated since the last ClearDirty.
func (b *BaseView) Dirty() bool { return b.dirty }

// ClearDirty resets the dirty flag (done after a draw or a migration).
func (b *BaseView) ClearDirty() { b.dirty = false }

// Released reports whether the view's tree has been released.
func (b *BaseView) Released() bool { return b.released }

// Shadow reports the RCHDroid shadow flag.
func (b *BaseView) Shadow() bool { return b.shadow }

// Sunny reports the RCHDroid sunny flag.
func (b *BaseView) Sunny() bool { return b.sunny }

// SetShadow sets the shadow flag on this view only; use
// ViewGroup.DispatchShadowStateChanged to flag a whole subtree.
func (b *BaseView) SetShadow(on bool) { b.shadow = on }

// SetSunny sets the sunny flag on this view only.
func (b *BaseView) SetSunny(on bool) { b.sunny = on }

// SunnyPeer returns the corresponding view in the sunny activity's tree,
// or nil before the essence mapping is built.
func (b *BaseView) SunnyPeer() View { return b.sunnyPeer }

// SetSunnyPeer installs the essence-mapping pointer.
func (b *BaseView) SetSunnyPeer(peer View) { b.sunnyPeer = peer }

// Invalidate marks the view dirty and notifies the window's invalidate
// hook — the exact interception point of the paper's modified
// View.invalidate. Invalidating a released view raises NullPointerError,
// because on stock Android the async callback would be dereferencing a
// destroyed widget.
func (b *BaseView) Invalidate() {
	b.checkAlive("invalidate")
	b.dirty = true
	if b.attach != nil {
		b.attach.Invalidations++
		if b.attach.OnInvalidate != nil {
			b.attach.OnInvalidate(b.self)
		}
	}
}

// checkAlive panics with NullPointerError when the view has been released.
// The app layer recovers the panic into a process crash.
func (b *BaseView) checkAlive(op string) {
	if b.released {
		panic(&NullPointerError{ViewID: b.id, ViewType: b.typeName, Op: op})
	}
}

// release marks the view dead. Called by ViewGroup.Release on destroy.
func (b *BaseView) release() {
	b.released = true
	b.attach = nil
	b.sunnyPeer = nil
}

// stateKey returns the bundle section key for this view's saved state.
func (b *BaseView) stateKey() string {
	return fmt.Sprintf("view:%d", b.id)
}

// saveSection allocates (or reuses) this view's nested bundle in out.
// Views without an ID save nothing, matching Android.
func (b *BaseView) saveSection(out *bundle.Bundle) *bundle.Bundle {
	if b.id == NoID {
		return nil
	}
	sec := out.GetBundle(b.stateKey())
	if sec == nil {
		sec = bundle.New()
		out.PutBundle(b.stateKey(), sec)
	}
	return sec
}

// restoreSection fetches this view's nested bundle from in, or nil.
func (b *BaseView) restoreSection(in *bundle.Bundle) *bundle.Bundle {
	if b.id == NoID || in == nil {
		return nil
	}
	return in.GetBundle(b.stateKey())
}

// SaveState implements View for widgets with no extra state.
func (b *BaseView) SaveState(out *bundle.Bundle) {
	if sec := b.saveSection(out); sec != nil {
		sec.PutBool("visible", b.visible)
	}
}

// RestoreState implements View for widgets with no extra state.
func (b *BaseView) RestoreState(in *bundle.Bundle) {
	if sec := b.restoreSection(in); sec != nil {
		b.visible = sec.GetBool("visible", b.visible)
	}
}

func (b *BaseView) String() string {
	return fmt.Sprintf("%s#%d", b.typeName, b.id)
}

// Container is implemented by views that hold child views (*ViewGroup and
// *DecorView).
type Container interface {
	View
	Children() []View
}

// Walk visits v and every descendant in depth-first pre-order. The walk
// stops early if fn returns false.
func Walk(v View, fn func(View) bool) bool {
	if !fn(v) {
		return false
	}
	if g, ok := v.(Container); ok {
		for _, c := range g.Children() {
			if !Walk(c, fn) {
				return false
			}
		}
	}
	return true
}

// Count returns the number of views in the tree rooted at v.
func Count(v View) int {
	n := 0
	Walk(v, func(View) bool { n++; return true })
	return n
}

// CountByType returns a map of TypeName → count for the tree rooted at v.
func CountByType(v View) map[string]int {
	m := make(map[string]int)
	Walk(v, func(x View) bool { m[x.TypeName()]++; return true })
	return m
}

// FindByID returns the first view in the tree with the given id, or nil.
func FindByID(root View, id ID) View {
	var found View
	Walk(root, func(x View) bool {
		if x.ID() == id {
			found = x
			return false
		}
		return true
	})
	return found
}

// DirtyViews returns the views currently marked dirty, in tree order.
func DirtyViews(root View) []View {
	var out []View
	Walk(root, func(x View) bool {
		if x.Base().Dirty() {
			out = append(out, x)
		}
		return true
	})
	return out
}
