package view

import (
	"testing"

	"rchdroid/internal/bundle"
)

// specFromBytes decodes a fuzz input into a layout spec: each byte picks
// a widget type (or closes the current group). Ids are assigned uniquely.
func specFromBytes(data []byte) *Spec {
	types := []string{
		"TextView", "EditText", "Button", "CheckBox", "ImageView",
		"ListView", "GridView", "ScrollView", "VideoView", "ProgressBar",
		"SeekBar", "Spinner", "Switch", "RatingBar", "Chronometer",
		"CustomTextView",
	}
	root := &Spec{Type: "LinearLayout", ID: 1}
	stack := []*Spec{root}
	next := ID(2)
	for _, b := range data {
		top := stack[len(stack)-1]
		switch {
		case b == 0xFF && len(stack) > 1: // close group
			stack = stack[:len(stack)-1]
		case b >= 0xF0 && len(stack) < 5: // open nested group
			g := &Spec{Type: "LinearLayout", ID: next}
			next++
			top.Children = append(top.Children, g)
			stack = append(stack, g)
		default:
			typ := types[int(b)%len(types)]
			child := &Spec{Type: typ, ID: next, Text: "t", Max: 10,
				Items: []string{"a", "b"}, Drawable: "d", URI: "u"}
			next++
			top.Children = append(top.Children, child)
		}
	}
	return root
}

// FuzzInflateSaveRestore builds arbitrary trees, inflates them, and
// pushes them through the save→restore round trip plus the renderer; none
// of it may panic, counts must match, and restoring onto a second
// inflation of the same spec must be stable.
func FuzzInflateSaveRestore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0xF0, 4, 5, 0xFF, 6})
	f.Add([]byte{0xF0, 0xF1, 0xF2, 10, 0xFF, 0xFF, 11, 12, 13, 14, 15})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		spec := specFromBytes(data)
		root := Inflate(spec)
		if got := Count(root); got != spec.CountSpecs() {
			t.Fatalf("inflated %d views from %d specs", got, spec.CountSpecs())
		}
		if Dump(root) == "" {
			t.Fatal("empty dump")
		}

		state := bundle.New()
		root.SaveState(state)

		again := Inflate(spec)
		again.RestoreState(state)
		if Count(again) != Count(root) {
			t.Fatal("restore changed tree size")
		}

		// Second save must produce an equal bundle (idempotent state).
		state2 := bundle.New()
		again.SaveState(state2)
		if !state.Equal(state2) {
			t.Fatalf("save not idempotent:\n%s\nvs\n%s", state, state2)
		}
	})
}
