package krefinder

import (
	"strings"
	"testing"

	"rchdroid/internal/app"
	"rchdroid/internal/appset"
	"rchdroid/internal/bundle"
	"rchdroid/internal/config"
	"rchdroid/internal/resources"
	"rchdroid/internal/view"
)

func appWithLayout(spec *view.Spec, mutate func(*app.ActivityClass)) *app.App {
	res := resources.NewTable()
	res.PutDefault("layout/main", spec)
	cls := &app.ActivityClass{Name: "Main"}
	cls.Callbacks.OnCreate = func(a *app.Activity, saved *bundle.Bundle) { a.SetContentView("layout/main") }
	if mutate != nil {
		mutate(cls)
	}
	return &app.App{Name: "analysed", Resources: res, Main: cls}
}

func TestFlagsStatefulWidgets(t *testing.T) {
	a := appWithLayout(view.Linear(1,
		&view.Spec{Type: "ListView", ID: 10, Items: []string{"x"}},
		&view.Spec{Type: "SeekBar", ID: 11, Max: 10},
		&view.Spec{Type: "CustomTextView", ID: 12},
		view.Text(13, "label"),
	), nil)
	reports := Analyze(a)
	byType := map[string]int{}
	for _, r := range reports {
		byType[r.WidgetType]++
		if r.Reason == "" || r.String() == "" {
			t.Fatalf("empty reason/string: %+v", r)
		}
	}
	if byType["ListView"] != 1 || byType["SeekBar"] != 1 || byType["CustomTextView"] != 1 {
		t.Fatalf("reports = %v", byType)
	}
	// Plain TextViews are not flagged: the analysis cannot distinguish
	// labels from programmatic status text (a false-negative source).
	if byType["TextView"] != 0 {
		t.Fatalf("TextView flagged: %v", byType)
	}
}

func TestImageSamplingHeuristic(t *testing.T) {
	children := []*view.Spec{}
	for i := 0; i < 6; i++ {
		children = append(children, view.Img(view.ID(20+i), "drawable/x"))
	}
	a := appWithLayout(view.Linear(1, children...), nil)
	reports := Analyze(a)
	images := 0
	for _, r := range reports {
		if r.WidgetType == "ImageView" {
			images++
		}
	}
	// First image skipped (logo heuristic), then at most 3 sampled.
	if images != 3 {
		t.Fatalf("image reports = %d, want 3", images)
	}
}

func TestSuppressedByOnSaveInstanceState(t *testing.T) {
	a := appWithLayout(view.Linear(1, &view.Spec{Type: "ListView", ID: 10}), func(cls *app.ActivityClass) {
		cls.Callbacks.OnSaveInstanceState = func(*app.Activity, *bundle.Bundle) {}
	})
	if got := Analyze(a); len(got) != 0 {
		t.Fatalf("reports = %v, want none (state assumed saved)", got)
	}
}

func TestSuppressedByDeclaredChanges(t *testing.T) {
	a := appWithLayout(view.Linear(1, &view.Spec{Type: "ListView", ID: 10}), func(cls *app.ActivityClass) {
		cls.DeclaredChanges = config.ChangeOrientation | config.ChangeScreenSize
	})
	if got := Analyze(a); len(got) != 0 {
		t.Fatalf("reports = %v, want none (self-handled)", got)
	}
}

func TestAnalyzeHandlesMissingLayout(t *testing.T) {
	a := &app.App{Name: "empty", Resources: resources.NewTable(), Main: &app.ActivityClass{Name: "M"}}
	if got := Analyze(a); got != nil {
		t.Fatalf("reports = %v", got)
	}
	if Analyze(&app.App{Name: "nil"}) != nil {
		t.Fatal("nil main should yield nil")
	}
}

func TestAnalyzeOverTP27FindsCandidatesEverywhere(t *testing.T) {
	// Every TP-27 app is restart-based without state saving, so the
	// analysis produces candidates for most of them — and the reasons
	// must always reference the default-save gap.
	flagged := 0
	for _, m := range appset.TP27() {
		reports := Analyze(m.Build())
		if len(reports) > 0 {
			flagged++
		}
		for _, r := range reports {
			if !strings.Contains(r.Reason, "not saved") && !strings.Contains(r.Reason, "unknown") {
				t.Fatalf("odd reason: %s", r.Reason)
			}
		}
	}
	if flagged < 20 {
		t.Fatalf("only %d/27 apps flagged", flagged)
	}
}
