// Package krefinder reimplements the other Static-Analysis-way baseline:
// a KREfinder-style detector (OOPSLA'16) for "KR errors" — state that a
// restart-based runtime change would lose. It analyses only the static
// artifacts an APK analysis would see: the layout resources and whether
// the activity implements onSaveInstanceState or declares configChanges.
// It never runs the app.
//
// Being static, it over-approximates: it must assume any stateful-looking
// widget might carry unsaved user state, so it reports candidates that a
// dynamic scan shows are fine — the false positives §2.2 quantifies
// ("across the 114 apps with potential errors, there were 2.3
// false-positive reports per app, on average"). The experiments package
// compares these reports against the ground truth from the live scan and
// reproduces that over-approximation.
package krefinder

import (
	"fmt"

	"rchdroid/internal/app"
	"rchdroid/internal/config"
	"rchdroid/internal/view"
)

// Report is one KR-error candidate: a widget whose state the analysis
// believes a restart would lose.
type Report struct {
	// App is the analysed application's package name.
	App string
	// WidgetID identifies the flagged view.
	WidgetID view.ID
	// WidgetType is the flagged view's class.
	WidgetType string
	// Reason explains the heuristic that fired.
	Reason string
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %s#%d — %s", r.App, r.WidgetType, r.WidgetID, r.Reason)
}

// maxImageReports caps how many image-resource candidates one activity
// contributes; real tools sample rather than exhaustively reporting
// repetitive widgets.
const maxImageReports = 3

// statefulClasses are widget classes whose essential state Android's
// default restart path does not persist; any instance is a candidate.
var statefulClasses = map[string]string{
	"ListView":       "list selection/checked items are not saved by default",
	"GridView":       "list selection/checked items are not saved by default",
	"ScrollView":     "scroll offset is not saved by default",
	"AbsListView":    "list selection is not saved by default",
	"Spinner":        "dropdown selection is not saved by default",
	"SeekBar":        "slider progress is not saved by default",
	"ProgressBar":    "progress is not saved by default",
	"RatingBar":      "rating is not saved by default",
	"VideoView":      "playback position is not saved by default",
	"Chronometer":    "timer state is not saved by default",
	"CustomTextView": "custom view: state saving unknown, assumed unsaved",
	"TextView":       "", // handled specially: only programmatic text is at risk
}

// Analyze statically inspects an application and returns the KR-error
// candidates for its main activity. The analysis sees the default-layout
// resource tree and the activity metadata — not the runtime behaviour.
func Analyze(application *app.App) []Report {
	cls := application.Main
	if cls == nil {
		return nil
	}
	// An activity that declares every change handles restarts itself; an
	// activity with onSaveInstanceState is assumed to save its state
	// (this is itself an under-approximation the paper notes: the saved
	// set may still be wrong, but the tool cannot tell).
	full := config.ChangeOrientation | config.ChangeScreenSize
	if full.HandledBy(cls.DeclaredChanges) {
		return nil
	}
	if cls.Callbacks.OnSaveInstanceState != nil {
		return nil
	}

	layoutAny, ok := application.Resources.Resolve("layout/main", config.Default())
	if !ok {
		return nil
	}
	spec, ok := layoutAny.(*view.Spec)
	if !ok {
		return nil
	}

	var reports []Report
	imageReports := 0
	imagesSeen := 0
	var walk func(s *view.Spec)
	walk = func(s *view.Spec) {
		if reason, stateful := statefulClasses[s.Type]; stateful && reason != "" && s.ID != view.NoID {
			reports = append(reports, Report{
				App: application.Name, WidgetID: s.ID, WidgetType: s.Type, Reason: reason,
			})
		}
		// Image resources are a classic over-approximation: the analysis
		// cannot tell which ImageViews are updated programmatically (those
		// really do lose their drawable) and which are static decoration,
		// so it samples a few candidates per activity.
		if s.Type == "ImageView" && s.ID != view.NoID {
			imagesSeen++
			// Heuristic: the first image is usually a static logo or
			// banner; later ones are more likely content, and the tool
			// samples at most a few candidates per activity.
			if imagesSeen > 1 && imageReports < maxImageReports {
				imageReports++
				reports = append(reports, Report{
					App: application.Name, WidgetID: s.ID, WidgetType: s.Type,
					Reason: "programmatically-set drawables are not saved by default",
				})
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(spec)
	return reports
}
