// Package device is the one way to build a simulated device world:
// scheduler, cost model, system server, app process — launched and
// settled. Every runner (oracle, experiments, explore, monkey, sweeps)
// constructs worlds through it, which is what makes the snapshot/fork
// facility sound: the pre-chaos world is defined as "built + launched +
// settled with nothing armed", and both the fresh-build path (New) and
// the fork path (NewTemplate + Template.Fork) arm chaos/handlers/tracers
// at exactly the same post-settle point, through the same ArmFunc. A
// forked world is therefore indistinguishable — event order, looper
// sequence numbers, RNG streams, counters — from a freshly built one,
// and per-seed cost is proportional to the chaos, not the world.
package device

import (
	"sync"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/bundle"
	"rchdroid/internal/costmodel"
	"rchdroid/internal/sim"
)

// Spec describes the pre-chaos world: which app to install, under which
// cost model, and how long to let the cold launch settle. Specs must be
// reusable: the App factory is called once per fresh build (and once per
// template) and must return a self-contained app whose callbacks touch
// only the activity instance they are handed — true of every app in this
// repo, and required for forks to share activity classes and layout
// specs read-only.
type Spec struct {
	// App builds the application to install.
	App func() *app.App
	// Model is the cost model (nil uses costmodel.Default()). Shared
	// read-only across every world built from the spec.
	Model *costmodel.Model
	// Settle is how long to advance the clock after the cold launch
	// (default 2s — launch plus drain for every app in the repo).
	Settle time.Duration
}

func (s Spec) settle() time.Duration {
	if s.Settle > 0 {
		return s.Settle
	}
	return 2 * time.Second
}

func (s Spec) model() *costmodel.Model {
	if s.Model != nil {
		return s.Model
	}
	return costmodel.Default()
}

// ArmFunc arms a settled world for its run: chaos plan, change handler
// (core.Install), guard, tracer, metrics. It runs at the same point on
// both the fresh and the fork path. The device package cannot import
// internal/core (core's own tests reach the oracle, which builds worlds
// here), so handler installation always arrives through this closure.
type ArmFunc func(*World)

// World is one booted device: the wired handles every runner needs.
type World struct {
	Sched *sim.Scheduler
	Model *costmodel.Model
	Sys   *atms.ATMS
	Proc  *app.Process
	// Token is the root activity record's token.
	Token int
	// Seed is the seed this world was built or forked for (0 for
	// templates and seedless rigs).
	Seed uint64
}

// New builds, launches and settles a fresh world, then arms it.
func New(spec Spec, seed uint64, arm ArmFunc) *World {
	sched := sim.NewScheduler()
	model := spec.model()
	sys := atms.New(sched, model)
	proc := app.NewProcess(sched, model, spec.App())
	token := sys.LaunchApp(proc)
	sched.Advance(spec.settle())
	w := &World{Sched: sched, Model: model, Sys: sys, Proc: proc, Token: token, Seed: seed}
	if arm != nil {
		arm(w)
	}
	return w
}

// Relaunch boots a fresh process for the world's app after a kill and
// schedules its launch with the system-held instance state (nil = cold
// start). rearm runs before the launch is scheduled — the same point the
// kill paths re-install handlers and fault injectors today. The world's
// Proc is updated to the new process.
func (w *World) Relaunch(saved *bundle.Bundle, rearm func(*app.Process)) *app.Process {
	p := app.NewProcess(w.Sched, w.Model, w.Proc.App())
	if rearm != nil {
		rearm(p)
	}
	w.Sys.LaunchAppWithState(p, saved)
	w.Proc = p
	return p
}

// Template is an immutable snapshot of a settled pre-chaos world. It is
// produced by NewTemplate and never advanced again; Fork stamps out
// isolated copies. Templates are safe for concurrent Fork calls — every
// fork only reads the base world.
type Template struct {
	spec Spec
	base *World
}

// NewTemplate builds and settles the spec's world once and validates it
// is forkable (quiescent scheduler and loopers, no pending async work,
// no armed hooks, every view and extra deep-copyable). An error means
// worlds of this spec must be built fresh per seed.
func NewTemplate(spec Spec) (*Template, error) {
	t := &Template{spec: spec, base: New(spec, 0, nil)}
	// A trial fork exercises every copy precondition up front; the base
	// world never runs again, so later forks cannot fail differently.
	if _, err := t.Fork(0, nil); err != nil {
		return nil, err
	}
	return t, nil
}

// Spec returns the spec the template was built from.
func (t *Template) Spec() Spec { return t.spec }

// Fork stamps out an isolated world for seed and arms it. Mutable state
// — scheduler counters, loopers, process, activity instances, view
// trees, meters, stack records, resource-lookup counters — is deep-
// copied; the cost model, activity classes and layout specs are shared
// read-only.
func (t *Template) Fork(seed uint64, arm ArmFunc) (*World, error) {
	sched, err := t.base.Sched.Fork()
	if err != nil {
		return nil, err
	}
	proc, err := app.ForkProcess(t.base.Proc, sched)
	if err != nil {
		return nil, err
	}
	sys, err := t.base.Sys.Fork(sched, map[*app.Process]*app.Process{t.base.Proc: proc})
	if err != nil {
		return nil, err
	}
	w := &World{Sched: sched, Model: t.base.Model, Sys: sys, Proc: proc, Token: t.base.Token, Seed: seed}
	if arm != nil {
		arm(w)
	}
	return w, nil
}

// TemplateCache builds at most one template per key and forks per-seed
// worlds from it, falling back to fresh builds for specs that turn out
// unforkable. It is safe for concurrent use by sweep workers and serve
// shards.
type TemplateCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

// cacheEntry is one key's build slot. The once gate means exactly one
// caller builds the template while same-key callers wait on it — and,
// unlike holding the cache lock across the build, callers for *other*
// keys are never serialized behind it. tpl stays nil when the spec is
// unforkable, which doubles as the don't-retry marker.
type cacheEntry struct {
	once sync.Once
	tpl  *Template
}

// NewTemplateCache returns an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{entries: make(map[string]*cacheEntry)}
}

// Fork returns a world for (key, seed): forked from the key's template
// when the spec is forkable, built fresh otherwise. The first call for a
// key builds and settles the template; concurrent callers for the same
// key wait for it rather than building twice, and callers for other
// keys proceed independently.
func (c *TemplateCache) Fork(key string, spec Spec, seed uint64, arm ArmFunc) *World {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if t, err := NewTemplate(spec); err == nil {
			e.tpl = t
		}
	})
	if e.tpl == nil {
		return New(spec, seed, arm)
	}
	w, err := e.tpl.Fork(seed, arm)
	if err != nil {
		// Cannot happen after NewTemplate's trial fork, but stay honest.
		return New(spec, seed, arm)
	}
	return w
}
