package device_test

import (
	"testing"

	"rchdroid/internal/device"
	"rchdroid/internal/oracle/corpus"
)

// The fresh-vs-fork pair below measures exactly what Template.Fork
// removes: world construction. Run with
//
//	go test ./internal/device -bench . -benchmem
func BenchmarkFreshBuild(b *testing.B) {
	sc, _ := corpus.ByName("double-rotation")
	spec := device.Spec{App: sc.App}
	for i := 0; i < b.N; i++ {
		device.New(spec, 1, nil)
	}
}

func BenchmarkTemplateFork(b *testing.B) {
	sc, _ := corpus.ByName("double-rotation")
	tpl, err := device.NewTemplate(device.Spec{App: sc.App})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Fork(1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
