package device_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/bundle"
	"rchdroid/internal/chaos"
	"rchdroid/internal/device"
	"rchdroid/internal/oracle"
	"rchdroid/internal/sim"
	"rchdroid/internal/view"
)

// forkSpec is the oracle app every fork test builds worlds from — a
// full view tree with loaded images and list state, and (unlike the
// interactive benchmark app, whose button click handler closes over its
// world and is rightly rejected by the clone) nothing that entangles
// the settled world with its environment.
func forkSpec() device.Spec {
	return device.Spec{App: func() *app.App {
		return oracle.OracleApp(4)
	}}
}

// fingerprint folds everything observable about a world into one string:
// sim clock, stack dump, foreground view tree, memory, crash state. Two
// worlds with equal fingerprints went through the same history.
func fingerprint(w *device.World) string {
	s := fmt.Sprintf("now=%v crashed=%v mem=%.4f\n", w.Sched.Now(), w.Proc.Crashed(), w.Proc.Memory().CurrentMB())
	s += w.Sys.DumpStack()
	if fg := w.Proc.Thread().ForegroundActivity(); fg != nil {
		s += view.Dump(fg.Decor())
	}
	return s
}

// rotate drives one runtime change through the world and settles it.
func rotate(w *device.World) {
	w.Sys.PushConfiguration(w.Sys.GlobalConfig().Rotated())
	w.Sched.Advance(2 * time.Second)
}

// TestForkIsolation pins the copy-on-fork contract: running one fork is
// invisible to its siblings and to the template.
func TestForkIsolation(t *testing.T) {
	tpl, err := device.NewTemplate(forkSpec())
	if err != nil {
		t.Fatalf("oracle app must be forkable: %v", err)
	}
	a, err := tpl.Fork(1, nil)
	if err != nil {
		t.Fatalf("fork a: %v", err)
	}
	b, err := tpl.Fork(2, nil)
	if err != nil {
		t.Fatalf("fork b: %v", err)
	}
	before := fingerprint(b)
	if got := fingerprint(a); got != before {
		t.Fatalf("two unarmed forks differ before any run:\n%s\nvs\n%s", got, before)
	}

	// Run fork a hard: put an async task in flight, rotate three times.
	a.Proc.StartAsyncTask(a.Proc.Thread().ForegroundActivity(), "probe", 400*time.Millisecond, func() {})
	a.Sched.Advance(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		rotate(a)
	}
	if got := fingerprint(b); got != before {
		t.Errorf("running fork a mutated sibling b:\n%s\nvs\n%s", got, before)
	}
	// The template is untouched iff a post-run fork still opens at the
	// pre-run state.
	c, err := tpl.Fork(3, nil)
	if err != nil {
		t.Fatalf("fork c: %v", err)
	}
	if got := fingerprint(c); got != before {
		t.Errorf("running fork a mutated the template (fresh fork differs):\n%s\nvs\n%s", got, before)
	}
}

// TestForkDeterminism pins replayability: forking the same seed twice
// and driving the same chaos yields byte-identical histories.
func TestForkDeterminism(t *testing.T) {
	tpl, err := device.NewTemplate(forkSpec())
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	run := func(seed uint64) string {
		var plan *chaos.Plan
		w, err := tpl.Fork(seed, func(w *device.World) {
			plan = chaos.NewPlan(seed, chaos.Light())
			plan.BindClock(w.Sched)
			plan.Install(w.Sys, w.Proc)
		})
		if err != nil {
			t.Fatalf("fork seed %d: %v", seed, err)
		}
		for i := 0; i < 3 && !w.Proc.Crashed(); i++ {
			rotate(w)
		}
		return fmt.Sprintf("%sinjections=%d dropped=%d\n", fingerprint(w), len(plan.Injections()), plan.TotalAsyncDropped())
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("same seed, same template, different history:\n%s\nvs\n%s", a, b)
	}
}

// TestForkMatchesFresh pins the core soundness claim: a forked world is
// indistinguishable from a freshly built one — same arming point, same
// event order, same chaos stream, same end state.
func TestForkMatchesFresh(t *testing.T) {
	tpl, err := device.NewTemplate(forkSpec())
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	run := func(build func(seed uint64, arm device.ArmFunc) *device.World, seed uint64) string {
		var plan *chaos.Plan
		w := build(seed, func(w *device.World) {
			plan = chaos.NewPlan(seed, chaos.Light())
			plan.BindClock(w.Sched)
			plan.Install(w.Sys, w.Proc)
		})
		for i := 0; i < 3 && !w.Proc.Crashed(); i++ {
			rotate(w)
		}
		return fmt.Sprintf("%sinjections=%d dropped=%d\n", fingerprint(w), len(plan.Injections()), plan.TotalAsyncDropped())
	}
	fresh := func(seed uint64, arm device.ArmFunc) *device.World {
		return device.New(forkSpec(), seed, arm)
	}
	forked := func(seed uint64, arm device.ArmFunc) *device.World {
		w, err := tpl.Fork(seed, arm)
		if err != nil {
			t.Fatalf("fork seed %d: %v", seed, err)
		}
		return w
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if a, b := run(fresh, seed), run(forked, seed); a != b {
			t.Errorf("seed %d: fork diverged from fresh build:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestTemplateCacheFallback pins the cache's honesty: a key is built
// once, and a second key with the same spec shares nothing with it.
func TestTemplateCacheFallback(t *testing.T) {
	c := device.NewTemplateCache()
	a := c.Fork("bench", forkSpec(), 1, nil)
	b := c.Fork("bench", forkSpec(), 2, nil)
	if a.Sched == b.Sched || a.Proc == b.Proc {
		t.Fatal("two forks of one key share mutable state")
	}
	rotate(a)
	if got, want := fingerprint(b), fingerprint(c.Fork("bench", forkSpec(), 3, nil)); got != want {
		t.Errorf("cache forks not isolated:\n%s\nvs\n%s", got, want)
	}
}

// TestTemplateCacheConcurrent hammers one cache from many goroutines —
// forkable and unforkable keys interleaved — under the contract the
// serve shards rely on: exactly one template build per forkable key
// (concurrent same-key callers wait, they never build twice), fresh
// builds for unforkable keys, every returned world isolated, and no
// data races (this test is the -race gate for the cache).
func TestTemplateCacheConcurrent(t *testing.T) {
	var forkableBuilds, unforkableBuilds atomic.Int64
	forkable := device.Spec{App: func() *app.App {
		forkableBuilds.Add(1)
		return oracle.OracleApp(2)
	}}
	// An extra holding a func makes the spec unforkable: the trial fork
	// rejects the deep copy, so every world must be built fresh.
	unforkable := device.Spec{App: func() *app.App {
		unforkableBuilds.Add(1)
		a := oracle.OracleApp(2)
		base := a.Main.Callbacks.OnCreate
		a.Main.Callbacks.OnCreate = func(act *app.Activity, saved *bundle.Bundle) {
			base(act, saved)
			act.PutExtra("hook", func() {})
		}
		return a
	}}

	const goroutines, perG = 8, 4
	worlds := make([]*device.World, goroutines*perG)
	c := device.NewTemplateCache()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seed := uint64(g*perG + i + 1)
				var w *device.World
				if g%2 == 0 {
					w = c.Fork("forkable", forkable, seed, nil)
				} else {
					w = c.Fork("unforkable", unforkable, seed, nil)
				}
				worlds[g*perG+i] = w
			}
		}(g)
	}
	wg.Wait()

	// One build for the template (spec.App runs once per build); every
	// fork shares it. Duplicate builds mean the once gate raced.
	if n := forkableBuilds.Load(); n != 1 {
		t.Errorf("forkable key built %d templates, want exactly 1", n)
	}
	// Unforkable: one failed template build plus one fresh build per
	// world.
	if n, want := unforkableBuilds.Load(), int64(1+goroutines/2*perG); n != want {
		t.Errorf("unforkable key ran the app factory %d times, want %d", n, want)
	}
	seen := make(map[*sim.Scheduler]bool)
	for i, w := range worlds {
		if w == nil || w.Proc.Crashed() || w.Proc.Thread().ForegroundActivity() == nil {
			t.Fatalf("world %d not settled", i)
		}
		if seen[w.Sched] {
			t.Fatalf("world %d shares a scheduler with another world", i)
		}
		seen[w.Sched] = true
	}
}
