package benchapp

import (
	"testing"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/config"
	"rchdroid/internal/core"
	"rchdroid/internal/costmodel"
	"rchdroid/internal/sim"
	"rchdroid/internal/view"
)

func bootBench(t *testing.T, images int, delay time.Duration, rch bool) (*sim.Scheduler, *atms.ATMS, *app.Process) {
	t.Helper()
	sched := sim.NewScheduler()
	model := costmodel.Default()
	sys := atms.New(sched, model)
	proc := app.NewProcess(sched, model, New(Config{Images: images, TaskDelay: delay}))
	if rch {
		core.Install(sys, proc, core.DefaultOptions())
	}
	sys.LaunchApp(proc)
	sched.Advance(time.Second)
	return sched, sys, proc
}

func TestGeneratedTreeShape(t *testing.T) {
	_, _, proc := bootBench(t, 8, time.Second, false)
	fg := proc.Thread().ForegroundActivity()
	if fg == nil {
		t.Fatal("no foreground")
	}
	byType := view.CountByType(fg.Decor())
	if byType["ImageView"] != 8 || byType["Button"] != 1 {
		t.Fatalf("tree = %v", byType)
	}
	// ViewCount = root layout + button + images.
	if fg.ViewCount() != 10 {
		t.Fatalf("ViewCount = %d", fg.ViewCount())
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := New(Config{Images: 2})
	if a.Name != "benchapp-2" {
		t.Fatalf("name = %q", a.Name)
	}
	b := New(Config{Images: 2, Name: "custom"})
	if b.Name != "custom" {
		t.Fatalf("name = %q", b.Name)
	}
}

func TestTouchButtonStartsTask(t *testing.T) {
	sched, _, proc := bootBench(t, 4, 200*time.Millisecond, false)
	if !TouchButton(proc) {
		t.Fatal("TouchButton failed")
	}
	sched.Advance(50 * time.Millisecond)
	if proc.AsyncInFlight() != 1 {
		t.Fatalf("inflight = %d", proc.AsyncInFlight())
	}
	sched.Advance(time.Second)
	fg := proc.Thread().ForegroundActivity()
	if got := ImagesLoaded(fg); got != 4 {
		t.Fatalf("ImagesLoaded = %d", got)
	}
}

func TestTouchButtonWithoutForeground(t *testing.T) {
	sched := sim.NewScheduler()
	proc := app.NewProcess(sched, costmodel.Default(), New(Config{Images: 1}))
	if TouchButton(proc) {
		t.Fatal("TouchButton should fail with no foreground activity")
	}
}

func TestFig9ScenarioCrashOnStockSurviveOnRCHDroid(t *testing.T) {
	// Touch the button, then change configuration before the task
	// returns: stock crashes, RCHDroid migrates.
	run := func(rch bool) (*app.Process, int) {
		sched, sys, proc := bootBench(t, 4, 300*time.Millisecond, rch)
		TouchButton(proc)
		sched.Advance(50 * time.Millisecond)
		sys.PushConfiguration(config.Portrait())
		sched.Advance(2 * time.Second)
		fg := proc.Thread().ForegroundActivity()
		loaded := 0
		if fg != nil {
			loaded = ImagesLoaded(fg)
		}
		return proc, loaded
	}
	stock, _ := run(false)
	if !stock.Crashed() {
		t.Fatal("stock run should crash")
	}
	rch, loaded := run(true)
	if rch.Crashed() {
		t.Fatalf("RCHDroid run crashed: %v", rch.CrashCause())
	}
	if loaded != 4 {
		t.Fatalf("loaded images on sunny tree = %d, want 4", loaded)
	}
}
