// Package benchapp generates the paper's benchmark application (§5.1):
// a main activity whose view tree contains a configurable number of
// ImageViews and one Button; touching the button issues an AsyncTask that
// updates every ImageView after a delay (five seconds in the paper's
// setup, configurable here). Landscape and portrait layout variants exist
// so a screen-size change re-resolves resources exactly as on the board.
package benchapp

import (
	"fmt"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/bundle"
	"rchdroid/internal/config"
	"rchdroid/internal/resources"
	"rchdroid/internal/view"
)

// View ids used by the generated app.
const (
	// ButtonID is the update button.
	ButtonID view.ID = 1
	// RootID is the content root.
	RootID view.ID = 2
	// ImageIDBase is the first ImageView id; image i has ImageIDBase+i.
	ImageIDBase view.ID = 100
)

// InitialDrawable is the resource every ImageView starts with.
const InitialDrawable = "drawable/init"

// LoadedDrawable is the resource the AsyncTask swaps in.
const LoadedDrawable = "drawable/loaded"

// Config parameterises the generated app.
type Config struct {
	// Images is the number of ImageViews (the Fig 10 sweep variable).
	Images int
	// TaskDelay is how long the AsyncTask works before updating the
	// views; the paper uses five seconds.
	TaskDelay time.Duration
	// Name overrides the package name (default benchapp-<n>).
	Name string
}

// New generates the benchmark app.
func New(cfg Config) *app.App {
	if cfg.TaskDelay <= 0 {
		cfg.TaskDelay = 5 * time.Second
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("benchapp-%d", cfg.Images)
	}

	res := resources.NewTable()
	layout := func() *view.Spec {
		children := []*view.Spec{view.Btn(ButtonID, "update")}
		for i := 0; i < cfg.Images; i++ {
			children = append(children, view.Img(ImageIDBase+view.ID(i), InitialDrawable))
		}
		return view.Linear(RootID, children...)
	}
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationLandscape}, layout())
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationPortrait}, layout())
	res.PutDefault("drawable/init", "bitmap:init")
	res.PutDefault("drawable/loaded", "bitmap:loaded")

	n := cfg.Images
	delay := cfg.TaskDelay
	cls := &app.ActivityClass{Name: "MainActivity"}
	cls.Callbacks.OnCreate = func(a *app.Activity, saved *bundle.Bundle) {
		a.SetContentView("layout/main")
		btn := a.FindViewByID(ButtonID).(*view.Button)
		btn.SetOnClick(func() {
			// The closure captures THIS instance's ImageViews — the
			// pattern that crashes stock Android after a restart.
			imgs := make([]*view.ImageView, 0, n)
			for i := 0; i < n; i++ {
				imgs = append(imgs, a.FindViewByID(ImageIDBase+view.ID(i)).(*view.ImageView))
			}
			a.StartAsyncTask("updateImages", delay, func() {
				for _, iv := range imgs {
					iv.SetDrawable(LoadedDrawable)
				}
			})
		})
	}
	return &app.App{Name: name, Resources: res, Main: cls}
}

// TouchButton taps the benchmark app's update button on the UI thread of
// the foreground instance. It reports whether a foreground instance
// existed.
func TouchButton(proc *app.Process) bool {
	fg := proc.Thread().ForegroundActivity()
	if fg == nil {
		return false
	}
	btn, ok := fg.FindViewByID(ButtonID).(*view.Button)
	if !ok {
		return false
	}
	proc.PostApp("touchButton", time.Millisecond, btn.Click)
	return true
}

// ImagesLoaded counts how many of the foreground instance's ImageViews
// show the loaded drawable.
func ImagesLoaded(a *app.Activity) int {
	n := 0
	view.Walk(a.Decor(), func(v view.View) bool {
		if iv, ok := v.(*view.ImageView); ok && iv.Drawable() == LoadedDrawable {
			n++
		}
		return true
	})
	return n
}
