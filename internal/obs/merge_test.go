package obs

import (
	"math/rand"
	"testing"
	"time"
)

// mergeOp is one deterministic observation, applied to whichever
// registry the partition assigns it to.
type mergeOp struct {
	kind  Kind
	name  string
	value int64
}

func genMergeOps(seed int64, n int) []mergeOp {
	rng := rand.New(rand.NewSource(seed))
	counters := []string{"reqs_total", "panics_total", "shed_total"}
	gauges := []string{"queue_high", "devices_high"}
	hists := []string{"lat_ns", "handling_ns"}
	ops := make([]mergeOp, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, mergeOp{KindCounter, counters[rng.Intn(len(counters))], int64(rng.Intn(10) + 1)})
		case 1:
			ops = append(ops, mergeOp{KindGauge, gauges[rng.Intn(len(gauges))], int64(rng.Intn(1000))})
		default:
			ops = append(ops, mergeOp{KindHistogram, hists[rng.Intn(len(hists))], int64(rng.Intn(int(2 * time.Second)))})
		}
	}
	return ops
}

func applyOps(regs []*Registry, assign func(i int) int, ops []mergeOp) {
	shards := make([]*Shard, len(regs))
	for i, r := range regs {
		shards[i] = r.Shard()
	}
	for i, op := range ops {
		sh := shards[assign(i)]
		switch op.kind {
		case KindCounter:
			sh.Counter(op.name, "c", Sim).Add(op.value)
		case KindGauge:
			sh.Gauge(op.name, "g", Wall).Set(op.value)
		case KindHistogram:
			sh.Histogram(op.name, "h", Sim, SimDurationBounds).Observe(op.value)
		}
	}
}

// TestMergeSnapshotsMatchesSingleRegistry: any partition of the same op
// stream across independent registries must merge to the byte-identical
// canonical (and full) dump a single registry produces — the contract
// that makes per-shard registries invisible in the fleet aggregate.
func TestMergeSnapshotsMatchesSingleRegistry(t *testing.T) {
	ops := genMergeOps(7, 500)
	single := NewRegistry()
	applyOps([]*Registry{single}, func(int) int { return 0 }, ops)
	want := single.Snapshot()

	for _, parts := range []int{2, 3, 8} {
		regs := make([]*Registry, parts)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		rng := rand.New(rand.NewSource(int64(parts)))
		assign := make([]int, len(ops))
		for i := range assign {
			assign[i] = rng.Intn(parts)
		}
		applyOps(regs, func(i int) int { return assign[i] }, ops)
		snaps := make([]*Snapshot, parts)
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		got, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if string(got.MarshalAll()) != string(want.MarshalAll()) {
			t.Fatalf("parts=%d: merged dump differs from single-registry dump\n--- merged\n%s\n--- single\n%s",
				parts, got.MarshalAll(), want.MarshalAll())
		}
		// Commutativity: reversing the snapshot order cannot change a byte.
		rev := make([]*Snapshot, parts)
		for i := range snaps {
			rev[parts-1-i] = snaps[i]
		}
		back, err := MergeSnapshots(rev...)
		if err != nil {
			t.Fatalf("parts=%d reversed: %v", parts, err)
		}
		if string(back.MarshalAll()) != string(got.MarshalAll()) {
			t.Fatalf("parts=%d: merge is order-sensitive", parts)
		}
	}
}

// TestMergeSnapshotsEmptyHistogram: a registry that defined a histogram
// but never observed into it must not drag the merged min to zero.
func TestMergeSnapshotsEmptyHistogram(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Shard().Histogram("lat_ns", "h", Sim, SimDurationBounds).Observe(int64(50 * time.Millisecond))
	b.Shard().Histogram("lat_ns", "h", Sim, SimDurationBounds) // defined, empty
	got, err := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	h := got.Metrics[0].Hist
	if h.Count != 1 || h.Min != int64(50*time.Millisecond) || h.Max != int64(50*time.Millisecond) {
		t.Fatalf("empty histogram polluted the merge: %+v", h)
	}
	// Both empty: min/max stay zero like a single registry renders them.
	c, d := NewRegistry(), NewRegistry()
	c.Shard().Histogram("lat_ns", "h", Sim, SimDurationBounds)
	d.Shard().Histogram("lat_ns", "h", Sim, SimDurationBounds)
	got, err = MergeSnapshots(c.Snapshot(), d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if h := got.Metrics[0].Hist; h.Count != 0 || h.Min != 0 || h.Max != 0 {
		t.Fatalf("all-empty merge should render min=max=0: %+v", h)
	}
}

// TestMergeSnapshotsConflicts: shape disagreements are serving bugs and
// must error, not silently pick a winner.
func TestMergeSnapshotsConflicts(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Shard().Counter("m", "c", Sim).Inc()
	b.Shard().Gauge("m", "g", Sim).Set(1)
	if _, err := MergeSnapshots(a.Snapshot(), b.Snapshot()); err == nil {
		t.Fatal("kind conflict did not error")
	}

	c, d := NewRegistry(), NewRegistry()
	c.Shard().Counter("m", "c", Sim).Inc()
	d.Shard().Counter("m", "c", Wall).Inc()
	if _, err := MergeSnapshots(c.Snapshot(), d.Snapshot()); err == nil {
		t.Fatal("domain conflict did not error")
	}

	e, f := NewRegistry(), NewRegistry()
	e.Shard().Histogram("h", "h", Sim, []int64{1, 2}).Observe(1)
	f.Shard().Histogram("h", "h", Sim, []int64{1, 3}).Observe(1)
	if _, err := MergeSnapshots(e.Snapshot(), f.Snapshot()); err == nil {
		t.Fatal("bounds conflict did not error")
	}
}
