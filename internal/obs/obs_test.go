package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()

	c := sh.Counter("runs_total", "runs", Sim)
	c.Inc()
	c.Add(4)
	g := sh.Gauge("depth", "max depth", Sim)
	g.Set(3)
	g.Set(1) // high-water: must not lower the mark
	h := sh.Histogram("lat_ns", "latency", Sim, []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 1000} {
		h.Observe(v)
	}

	snap := reg.Snapshot()
	byName := map[string]Metric{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if got := byName["runs_total"].Value; got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := byName["depth"].Value; got != 3 {
		t.Errorf("gauge = %d, want 3 (high-water)", got)
	}
	hist := byName["lat_ns"].Hist
	if hist == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// ≤10 → bucket 0, ≤100 → bucket 1, rest overflow.
	want := []int64{2, 2, 2}
	for i, n := range want {
		if hist.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hist.Counts[i], n, hist.Counts)
		}
	}
	if hist.Count != 6 || hist.Sum != 5+10+11+100+101+1000 {
		t.Errorf("count=%d sum=%d, want 6 / 1227", hist.Count, hist.Sum)
	}
	if hist.Min != 5 || hist.Max != 1000 {
		t.Errorf("min=%d max=%d, want 5 / 1000", hist.Min, hist.Max)
	}
}

func TestGaugeNegativeValues(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()
	sh.Gauge("below_zero", "", Sim).Set(-7)
	snap := reg.Snapshot()
	if got := snap.Metrics[0].Value; got != -7 {
		t.Errorf("negative-only gauge = %d, want -7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Hist{
		Bounds: []int64{10, 20, 30},
		Counts: []int64{50, 40, 9, 1},
		Count:  100,
		Min:    1,
		Max:    99,
	}
	if q := h.Quantile(0.50); q != 10 {
		t.Errorf("p50 = %d, want 10", q)
	}
	if q := h.Quantile(0.90); q != 20 {
		t.Errorf("p90 = %d, want 20", q)
	}
	if q := h.Quantile(0.99); q != 30 {
		t.Errorf("p99 = %d, want 30", q)
	}
	if q := h.Quantile(1.0); q != 99 {
		t.Errorf("p100 = %d, want Max=99 (overflow bucket)", q)
	}
	empty := &Hist{}
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %d, want 0", q)
	}
}

// TestMergeCommutative is the shard/merge contract: the same
// observations partitioned across any number of shards, in any
// interleaving, must merge to byte-identical canonical dumps.
func TestMergeCommutative(t *testing.T) {
	type op struct {
		kind string
		name string
		v    int64
	}
	rng := rand.New(rand.NewSource(613))
	var ops []op
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, op{"c", "events_total", 1 + rng.Int63n(5)})
		case 1:
			ops = append(ops, op{"g", "frontier", rng.Int63n(1000)})
		default:
			ops = append(ops, op{"h", "lat_ns", rng.Int63n(int64(2 * time.Second))})
		}
	}
	apply := func(sh *Shard, o op) {
		switch o.kind {
		case "c":
			sh.Counter(o.name, "", Sim).Add(o.v)
		case "g":
			sh.Gauge(o.name, "", Sim).Set(o.v)
		case "h":
			sh.Histogram(o.name, "", Sim, SimDurationBounds).Observe(o.v)
		}
	}

	// Reference: everything through one shard, in order.
	ref := NewRegistry()
	one := ref.Shard()
	for _, o := range ops {
		apply(one, o)
	}
	want := ref.Snapshot().MarshalCanonical()

	for _, workers := range []int{2, 3, 8} {
		reg := NewRegistry()
		shards := make([]*Shard, workers)
		for i := range shards {
			shards[i] = reg.Shard()
		}
		// Random partition, concurrent application.
		var wg sync.WaitGroup
		perShard := make([][]op, workers)
		for _, o := range ops {
			w := rng.Intn(workers)
			perShard[w] = append(perShard[w], o)
		}
		for i := range shards {
			wg.Add(1)
			go func(sh *Shard, list []op) {
				defer wg.Done()
				for _, o := range list {
					apply(sh, o)
				}
			}(shards[i], perShard[i])
		}
		wg.Wait()
		got := reg.Snapshot().MarshalCanonical()
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: canonical dump differs from single-shard reference\n--- want\n%s--- got\n%s",
				workers, want, got)
		}
	}
}

func TestWallDomainQuarantine(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()
	sh.Counter("seeds_total", "seeds", Sim).Add(4)
	sh.Gauge("pool_workers", "workers", Wall).Set(8)
	sh.Histogram("seed_wall_ns", "wall latency", Wall, WallDurationBounds).Observe(12345)

	snap := reg.Snapshot()
	canon := string(snap.MarshalCanonical())
	if strings.Contains(canon, "pool_workers") || strings.Contains(canon, "seed_wall_ns") {
		t.Errorf("wall-domain metric leaked into canonical dump:\n%s", canon)
	}
	if !strings.Contains(canon, "seeds_total") {
		t.Errorf("sim-domain metric missing from canonical dump:\n%s", canon)
	}
	all := string(snap.MarshalAll())
	prom := snap.PromText()
	for _, name := range []string{"pool_workers", "seed_wall_ns", "seeds_total"} {
		if !strings.Contains(all, name) {
			t.Errorf("full dump missing %s", name)
		}
		if !strings.Contains(prom, name) {
			t.Errorf("prom exposition missing %s", name)
		}
	}
}

func TestPromTextFormat(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()
	sh.Counter("flips_total", "coin flips", Sim).Add(2)
	sh.Histogram("h_ns", "", Sim, []int64{10}).Observe(7)
	sh.Histogram("h_ns", "", Sim, []int64{10}).Observe(99)

	prom := reg.Snapshot().PromText()
	for _, want := range []string{
		"# HELP flips_total coin flips",
		"# TYPE flips_total counter",
		`flips_total{domain="sim"} 2`,
		"# TYPE h_ns histogram",
		`h_ns_bucket{domain="sim",le="10"} 1`,
		`h_ns_bucket{domain="sim",le="+Inf"} 2`,
		`h_ns_sum{domain="sim"} 106`,
		`h_ns_count{domain="sim"} 2`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, prom)
		}
	}
}

func TestSnapshotRoundTripAndTable(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()
	sh.Counter("runs_total", "runs", Sim).Add(3)
	sh.Histogram("handling_sim_ns", "handling", Sim, SimDurationBounds).
		ObserveDuration(90 * time.Millisecond)
	sh.Gauge("workers", "", Wall).Set(4)

	raw := reg.Snapshot().MarshalAll()
	snap, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if len(snap.Metrics) != 3 {
		t.Fatalf("round-trip kept %d metrics, want 3", len(snap.Metrics))
	}
	table := snap.Table()
	for _, want := range []string{"runs_total", "handling_sim_ns", "p95=", "wall domain"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if _, err := DecodeSnapshot([]byte("{")); err == nil {
		t.Error("DecodeSnapshot accepted truncated input")
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	sh := reg.Shard()
	if sh != nil {
		t.Fatal("nil registry returned a live shard")
	}
	// All of these must no-op, not panic.
	sh.Counter("x", "", Sim).Inc()
	sh.Gauge("x", "", Sim).Set(1)
	sh.Histogram("x", "", Sim, nil).Observe(1)
	if v := reg.CounterValue("x"); v != 0 {
		t.Errorf("nil registry CounterValue = %d", v)
	}
	if got := reg.Snapshot(); len(got.Metrics) != 0 {
		t.Errorf("nil registry snapshot has %d metrics", len(got.Metrics))
	}
	var p *Progress
	p.Stop() // no-op
}

func TestConflictingRedefinitionPanics(t *testing.T) {
	reg := NewRegistry()
	sh := reg.Shard()
	sh.Counter("m", "", Sim)
	defer func() {
		if recover() == nil {
			t.Error("redefining a counter as a gauge did not panic")
		}
	}()
	sh.Gauge("m", "", Sim)
}

func TestLiveCounterValue(t *testing.T) {
	reg := NewRegistry()
	a, b := reg.Shard(), reg.Shard()
	a.Counter("done", "", Sim).Add(3)
	b.Counter("done", "", Sim).Add(4)
	if v := reg.CounterValue("done"); v != 7 {
		t.Errorf("CounterValue = %d, want 7", v)
	}
	if v := reg.CounterValue("absent"); v != 0 {
		t.Errorf("CounterValue(absent) = %d, want 0", v)
	}
}

func TestProgressLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var done atomic.Int64
	p := StartProgress(w, "seeds", 10, time.Millisecond, func() (int64, int64) {
		return done.Load(), 1
	})
	done.Store(5)
	time.Sleep(20 * time.Millisecond)
	done.Store(10)
	p.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "/10 seeds") || !strings.Contains(out, "failures 1") {
		t.Errorf("progress output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "10/10 seeds (100.0%)") {
		t.Errorf("final progress line missing terminal state:\n%s", out)
	}
	if StartProgress(nil, "x", 1, time.Second, nil) != nil {
		t.Error("StartProgress with nil writer/fn should return nil")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
