package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Hist is a histogram's merged state.
type Hist struct {
	// Bounds are the ascending bucket upper limits; Counts has one more
	// entry than Bounds (the overflow bucket).
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// Quantile estimates the q-th quantile (0..1) by nearest rank over the
// buckets: the returned value is the upper bound of the bucket holding
// the rank (Max for the overflow bucket). Zero for an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Mean returns the exact mean of the observations (the histogram keeps
// the true sum, not a bucketed approximation). Zero for empty.
func (h *Hist) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Metric is one merged metric in a snapshot.
type Metric struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Domain string `json:"domain"`
	Help   string `json:"help,omitempty"`
	// Value carries counters and gauges; Hist carries histograms.
	Value int64 `json:"value"`
	Hist  *Hist `json:"hist,omitempty"`
}

// Snapshot is a merged view of a registry, sorted by metric name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot merges every shard: counters and histogram buckets sum,
// gauges take the maximum. Safe to call while workers are still
// writing (atomic loads), in which case it is a live partial view; a
// snapshot taken after the pool drains is the canonical aggregate.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	defs := make([]*def, 0, len(r.defs))
	for _, d := range r.defs {
		defs = append(defs, d)
	}
	r.mu.Unlock()
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })

	for _, d := range defs {
		m := Metric{Name: d.name, Kind: d.kind.String(), Domain: d.domain.String(), Help: d.help}
		switch d.kind {
		case KindCounter:
			for _, s := range shards {
				s.mu.Lock()
				c := s.counters[d.name]
				s.mu.Unlock()
				if c != nil {
					m.Value += c.v.Load()
				}
			}
		case KindGauge:
			any := false
			max := int64(math.MinInt64)
			for _, s := range shards {
				s.mu.Lock()
				g := s.gauges[d.name]
				s.mu.Unlock()
				if g != nil && g.set.Load() {
					any = true
					if v := g.v.Load(); v > max {
						max = v
					}
				}
			}
			if any {
				m.Value = max
			}
		case KindHistogram:
			hist := &Hist{
				Bounds: append([]int64(nil), d.bounds...),
				Counts: make([]int64, len(d.bounds)+1),
				Min:    math.MaxInt64,
				Max:    math.MinInt64,
			}
			for _, s := range shards {
				s.mu.Lock()
				h := s.hists[d.name]
				s.mu.Unlock()
				if h == nil {
					continue
				}
				for i := range hist.Counts {
					hist.Counts[i] += h.buckets[i].Load()
				}
				hist.Count += h.count.Load()
				hist.Sum += h.sum.Load()
				if v := h.min.Load(); v < hist.Min {
					hist.Min = v
				}
				if v := h.max.Load(); v > hist.Max {
					hist.Max = v
				}
			}
			if hist.Count == 0 {
				hist.Min, hist.Max = 0, 0
			}
			m.Hist = hist
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Canonical returns the sim-domain subset — the deterministic part of
// the snapshot. Wall-domain metrics are quarantined out, exactly like
// the sweep report keeps wall times outside its canonical bytes.
func (s *Snapshot) Canonical() *Snapshot {
	out := &Snapshot{}
	for _, m := range s.Metrics {
		if m.Domain == Sim.String() {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

// MarshalCanonical renders the canonical (sim-domain) dump: indented
// JSON, sorted by name, newline-terminated — byte-identical for the
// same seed range at any worker count.
func (s *Snapshot) MarshalCanonical() []byte {
	b, _ := json.MarshalIndent(s.Canonical(), "", "  ")
	return append(b, '\n')
}

// MarshalAll renders the full diagnostic dump, wall domain included.
func (s *Snapshot) MarshalAll() []byte {
	b, _ := json.MarshalIndent(s, "", "  ")
	return append(b, '\n')
}

// DecodeSnapshot parses a dump produced by MarshalCanonical/MarshalAll.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %v", err)
	}
	return &s, nil
}

// PromText renders the snapshot in the Prometheus text exposition
// format (both domains — the exposition is for live operations, not
// determinism checks; wall metrics carry a domain label). Histograms
// render cumulative le buckets plus _sum and _count, per convention.
func (s *Snapshot) PromText() string {
	var sb strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", m.Name, m.Help)
		}
		promKind := m.Kind
		if promKind == "histogram" {
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", m.Name)
			var cum int64
			for i, c := range m.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.Hist.Bounds) {
					le = fmt.Sprintf("%d", m.Hist.Bounds[i])
				}
				fmt.Fprintf(&sb, "%s_bucket{domain=%q,le=%q} %d\n", m.Name, m.Domain, le, cum)
			}
			fmt.Fprintf(&sb, "%s_sum{domain=%q} %d\n", m.Name, m.Domain, m.Hist.Sum)
			fmt.Fprintf(&sb, "%s_count{domain=%q} %d\n", m.Name, m.Domain, m.Hist.Count)
			continue
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", m.Name, promKind)
		fmt.Fprintf(&sb, "%s{domain=%q} %d\n", m.Name, m.Domain, m.Value)
	}
	return sb.String()
}

// durationish reports whether a metric's values are nanoseconds, going
// by the repo-wide naming convention (_ns suffix).
func durationish(name string) bool { return strings.HasSuffix(name, "_ns") }

func fmtValue(name string, v int64) string {
	if durationish(name) {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// Table renders the snapshot as the human-readable SLO summary: one
// aligned row per metric, histograms expanded to count/p50/p95/p99/max.
// Wall-domain rows are listed under a separate header so the reader
// sees at a glance which numbers are environment-dependent.
func (s *Snapshot) Table() string {
	var sb strings.Builder
	write := func(domain string, header string) {
		rows := make([][2]string, 0, len(s.Metrics))
		for _, m := range s.Metrics {
			if m.Domain != domain {
				continue
			}
			var val string
			switch {
			case m.Hist != nil && m.Hist.Count == 0:
				val = "n=0"
			case m.Hist != nil:
				val = fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
					m.Hist.Count,
					fmtValue(m.Name, m.Hist.Quantile(0.50)),
					fmtValue(m.Name, m.Hist.Quantile(0.95)),
					fmtValue(m.Name, m.Hist.Quantile(0.99)),
					fmtValue(m.Name, m.Hist.Max))
			default:
				val = fmtValue(m.Name, m.Value)
			}
			rows = append(rows, [2]string{m.Name, val})
		}
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s\n", header)
		width := 0
		for _, r := range rows {
			if len(r[0]) > width {
				width = len(r[0])
			}
		}
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %-*s  %s\n", width, r[0], r[1])
		}
	}
	write("sim", "metrics (sim domain, canonical):")
	write("wall", "metrics (wall domain, environment-dependent):")
	if sb.Len() == 0 {
		return "metrics: none\n"
	}
	return sb.String()
}
