// Package obs is the live aggregate-metrics layer: a deterministic
// registry of counters, gauges and bounded histograms, sharded per
// worker so the sweep engine's hot path never takes a lock, with a
// commutative merge whose canonical rendering is byte-identical at any
// worker count.
//
// The registry splits every metric into one of two domains:
//
//   - Sim — values derived from the seed alone: event counts, sim-clock
//     durations, schedule tallies. Any partition of a seed range across
//     shards merges to the same totals, so sim-domain metrics are part
//     of the canonical output and obey the same determinism contract as
//     sweep reports (workers=1 and workers=N dumps byte-compare equal).
//   - Wall — wall-clock timings and environment bookkeeping (per-seed
//     wall latency, pool size, GOMAXPROCS). These are quarantined
//     outside the canonical output, exactly like the sweep report keeps
//     per-seed wall times out of its canonical bytes, and only appear
//     in the diagnostic dump and the Prometheus exposition.
//
// Merge semantics are chosen to be commutative and associative so the
// shard partition cannot leak into the totals: counters and histogram
// buckets sum, gauges are high-water marks (monotone max). Values are
// int64 throughout — float sums are not associative, integer sums are.
//
// A nil *Shard (and the nil handles it returns) no-ops everywhere, so
// instrumented seams cost one branch when observation is off.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Domain classifies a metric's determinism contract.
type Domain int

const (
	// Sim metrics derive from the seed alone and are canonical.
	Sim Domain = iota
	// Wall metrics carry wall-clock or environment values and are
	// quarantined outside the canonical output.
	Wall
)

// String names the domain for dumps.
func (d Domain) String() string {
	if d == Wall {
		return "wall"
	}
	return "sim"
}

// Kind is a metric's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind for dumps.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "counter"
}

// def is the registry-level identity of a metric: every shard's handle
// for a name shares one def, so kind/domain/bounds cannot diverge.
type def struct {
	name   string
	kind   Kind
	domain Domain
	help   string
	bounds []int64
}

// Registry owns the metric definitions and the worker shards.
type Registry struct {
	mu     sync.Mutex
	defs   map[string]*def
	shards []*Shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]*def)}
}

// Shard allocates a new shard. Each worker goroutine must use its own
// shard; a shard's write methods are lock-free (atomic adds), and its
// values may be read concurrently by live snapshots.
func (r *Registry) Shard() *Shard {
	if r == nil {
		return nil
	}
	s := &Shard{
		reg:      r,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
	return s
}

// define resolves (creating on first use) the def for a name, panicking
// on a conflicting redefinition — two call sites disagreeing about a
// metric's shape is a programming error, not a runtime condition.
func (r *Registry) define(name string, kind Kind, domain Domain, help string, bounds []int64) *def {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.defs[name]; ok {
		if d.kind != kind || d.domain != domain {
			panic(fmt.Sprintf("obs: metric %q redefined as %s/%s, was %s/%s",
				name, kind, domain, d.kind, d.domain))
		}
		return d
	}
	d := &def{name: name, kind: kind, domain: domain, help: help, bounds: bounds}
	r.defs[name] = d
	return d
}

// CounterValue sums the named counter across all shards — the live read
// the progress line uses. Zero for an unknown name.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	shards := r.shards
	r.mu.Unlock()
	var total int64
	for _, s := range shards {
		s.mu.Lock()
		c := s.counters[name]
		s.mu.Unlock()
		if c != nil {
			total += c.v.Load()
		}
	}
	return total
}

// Shard is one worker's private write surface. Metric handles are
// cached per shard; the write path is a single atomic op.
type Shard struct {
	reg      *Registry
	mu       sync.Mutex // guards the handle maps, not the values
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter returns (creating on first use) the shard's handle for a
// counter. Nil shards return a nil handle; both no-op.
func (s *Shard) Counter(name, help string, domain Domain) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{def: s.reg.define(name, KindCounter, domain, help, nil)}
		s.counters[name] = c
	}
	s.mu.Unlock()
	return c
}

// Gauge returns (creating on first use) the shard's handle for a
// high-water gauge.
func (s *Shard) Gauge(name, help string, domain Domain) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{def: s.reg.define(name, KindGauge, domain, help, nil)}
		g.v.Store(math.MinInt64)
		s.gauges[name] = g
	}
	s.mu.Unlock()
	return g
}

// Histogram returns (creating on first use) the shard's handle for a
// bounded histogram. bounds are ascending bucket upper limits; values
// above the last bound land in an overflow bucket. The first caller's
// bounds win for the whole registry.
func (s *Shard) Histogram(name, help string, domain Domain, bounds []int64) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		d := s.reg.define(name, KindHistogram, domain, help, bounds)
		h = &Histogram{def: d, buckets: make([]atomic.Int64, len(d.bounds)+1)}
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
		s.hists[name] = h
	}
	s.mu.Unlock()
	return h
}

// Counter is a monotone sum. Merge: addition.
type Counter struct {
	def *def
	v   atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a high-water mark: Set keeps the maximum value ever seen.
// Max is the only order-free gauge semantic — last-write-wins would let
// the seed→worker assignment leak into the merged value.
type Gauge struct {
	def *def
	v   atomic.Int64
	set atomic.Bool
}

// Set raises the gauge to v if v exceeds the current mark. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.set.Store(true)
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets and tracks
// count/sum/min/max. All fields merge commutatively.
type Histogram struct {
	def        *def
	buckets    []atomic.Int64 // len(bounds)+1; last is overflow
	count, sum atomic.Int64
	min, max   atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.def.bounds) && v > h.def.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// SimDurationBounds are the default bucket limits (ns) for sim-clock
// durations: handling and flip phases live in the 1 ms – 1 s band the
// transparency bound polices.
var SimDurationBounds = []int64{
	int64(1 * time.Millisecond),
	int64(2 * time.Millisecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(20 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(200 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
}

// WallDurationBounds are the default bucket limits (ns) for wall-clock
// latencies: per-seed runs sit in the 100 µs – 5 s band.
var WallDurationBounds = []int64{
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(5 * time.Second),
}
