package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCPUProfileWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

func TestHeapProfileWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile is empty")
	}
}
