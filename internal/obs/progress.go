package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressFunc samples the live state of a run: how many units have
// completed and how many of those failed. It is called from the
// progress goroutine, so it must be safe to call concurrently with the
// workers (Registry.CounterValue is).
type ProgressFunc func() (done, failed int64)

// Progress is a periodic one-line status printer for long sweeps: units
// done, percentage, throughput, ETA and failures so far. It writes to
// stderr-style diagnostics only — wall-clock rates never belong in
// canonical output.
type Progress struct {
	w        io.Writer
	label    string // unit name: "seeds", "schedules"
	total    int64
	interval time.Duration
	fn       ProgressFunc

	start time.Time
	stop  chan struct{}
	done  sync.WaitGroup
}

// StartProgress launches the ticker. interval ≤ 0 disables it and
// returns nil; Stop on a nil Progress is a no-op.
func StartProgress(w io.Writer, label string, total int, interval time.Duration, fn ProgressFunc) *Progress {
	if interval <= 0 || w == nil || fn == nil {
		return nil
	}
	p := &Progress{
		w: w, label: label, total: int64(total), interval: interval, fn: fn,
		start: time.Now(), stop: make(chan struct{}),
	}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.print()
		case <-p.stop:
			return
		}
	}
}

// print renders one progress line.
func (p *Progress) print() {
	done, failed := p.fn()
	elapsed := time.Since(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(done) / float64(p.total)
	}
	eta := "?"
	if rate > 0 && done < p.total {
		d := time.Duration(float64(p.total-done) / rate * float64(time.Second))
		eta = d.Round(100 * time.Millisecond).String()
	} else if done >= p.total {
		eta = "0s"
	}
	fmt.Fprintf(p.w, "progress: %d/%d %s (%.1f%%) %.0f %s/sec eta %s failures %d\n",
		done, p.total, p.label, pct, rate, p.label, eta, failed)
}

// Stop halts the ticker and prints one final line, so a sweep that
// finishes between ticks still reports its terminal state. Nil-safe.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	p.done.Wait()
	p.print()
}
