package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path, creating parent
// directories as needed, and returns the stop function that finishes
// the profile and closes the file. The profiling hooks exist so the
// allocation-reduction work on the per-seed hot path has targets —
// capture a sweep with -profile-cpu, feed the file to `go tool pprof`.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := createProfileFile(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %v", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// objects, not collectable garbage) and writes the heap profile to
// path.
func WriteHeapProfile(path string) error {
	f, err := createProfileFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: write heap profile: %v", err)
	}
	return nil
}

func createProfileFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: profile dir: %v", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: profile file: %v", err)
	}
	return f, nil
}
