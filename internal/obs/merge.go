package obs

import (
	"fmt"
	"math"
	"sort"
)

// MergeSnapshots merges snapshots taken from independent registries into
// one aggregate, under the same commutative semantics the per-shard merge
// inside a single registry uses: counters and histogram buckets sum,
// gauges take the maximum, histogram min/max fold across non-empty
// inputs. The fleet service keeps one registry per shard so a
// misbehaving shard can be torn down with its metrics intact; this is
// the seam that makes the aggregate dump byte-identical regardless of
// how devices were partitioned across shards.
//
// Two snapshots defining the same metric name with a different kind,
// domain, or bucket layout cannot merge meaningfully; that is a
// programming error surfaced as an error (the fleet path treats it as a
// serving bug, not a per-request condition).
//
// Gauges merge as max over snapshot values; registries that never Set a
// gauge render it as 0, so negative gauge marks do not survive this
// merge. Every gauge in the repo is a non-negative high-water mark.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	merged := make(map[string]*Metric)
	order := make([]string, 0)
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for i := range snap.Metrics {
			m := &snap.Metrics[i]
			prev, ok := merged[m.Name]
			if !ok {
				cp := *m
				if m.Hist != nil {
					h := *m.Hist
					h.Bounds = append([]int64(nil), m.Hist.Bounds...)
					h.Counts = append([]int64(nil), m.Hist.Counts...)
					cp.Hist = &h
				}
				merged[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			if prev.Kind != m.Kind || prev.Domain != m.Domain {
				return nil, fmt.Errorf("obs: merge conflict on %q: %s/%s vs %s/%s",
					m.Name, prev.Kind, prev.Domain, m.Kind, m.Domain)
			}
			switch prev.Kind {
			case KindCounter.String():
				prev.Value += m.Value
			case KindGauge.String():
				if m.Value > prev.Value {
					prev.Value = m.Value
				}
			case KindHistogram.String():
				if err := mergeHist(m.Name, prev.Hist, m.Hist); err != nil {
					return nil, err
				}
			}
		}
	}
	// Sorted-by-name output matches Registry.Snapshot, so a merged dump
	// renders exactly like a single-registry dump of the same values.
	sort.Strings(order)
	out := &Snapshot{}
	for _, name := range order {
		out.Metrics = append(out.Metrics, *merged[name])
	}
	return out, nil
}

// mergeHist folds src into dst: bucket-wise sums, with min/max folded
// only across non-empty histograms (an empty histogram renders min=max=0
// and must not drag a real minimum down to zero).
func mergeHist(name string, dst, src *Hist) error {
	if dst == nil || src == nil {
		return fmt.Errorf("obs: merge conflict on %q: histogram metric without hist payload", name)
	}
	if len(dst.Bounds) != len(src.Bounds) {
		return fmt.Errorf("obs: merge conflict on %q: bucket layouts differ (%d vs %d bounds)",
			name, len(dst.Bounds), len(src.Bounds))
	}
	for i, b := range dst.Bounds {
		if src.Bounds[i] != b {
			return fmt.Errorf("obs: merge conflict on %q: bound %d differs (%d vs %d)",
				name, i, b, src.Bounds[i])
		}
	}
	if src.Count == 0 {
		return nil
	}
	if dst.Count == 0 {
		dst.Min, dst.Max = math.MaxInt64, math.MinInt64
	}
	for i := range dst.Counts {
		dst.Counts[i] += src.Counts[i]
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.Min < dst.Min {
		dst.Min = src.Min
	}
	if src.Max > dst.Max {
		dst.Max = src.Max
	}
	return nil
}
