// Package forksafety statically enforces the precondition Template.Fork
// relies on: the simulated device's state lives entirely inside the
// object graphs that fork.go files deep-copy. A package-level mutable
// var in one of the fork-critical packages would be shared between a
// template and every world forked from it — invisible to the copy, and
// a determinism leak the byte-identity gates might only catch long
// after the var landed. This test fails the moment such a var appears,
// pointing at the allowlist below so the author has to argue the var is
// genuinely immutable.
package forksafety

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// forkCriticalPackages are the packages whose state Template.Fork must
// be able to deep-copy. Every package with a fork.go (or whose objects
// are cloned by one) belongs here.
var forkCriticalPackages = []string{
	"../core",
	"../app",
	"../atms",
	"../looper",
	"../view",
	// serve holds forked worlds resident across requests: a package-level
	// var here would be shared between every device on every shard, on
	// top of the template/fork aliasing the other packages guard against.
	"../serve",
}

// allowlist names the package-level vars audited as immutable after
// initialization. Key is "package/file.go:varname". Adding to this list
// requires the same audit: the var must never be written after init,
// and its reachable object graph must never be mutated by a running
// world. A read-only lookup table qualifies; a counter, cache, pool, or
// registry does not.
var allowlist = map[string]bool{
	// Static lifecycle-transition table; built once, only ever read.
	"app/lifecycle.go:validTransitions": true,
	// Sentinel error value compared with errors.Is; never written after
	// init and carries no mutable state.
	"serve/serve.go:errForcedAbort": true,
}

// TestNoPackageLevelMutableState parses every fork-critical package and
// fails on package-level var declarations (and init funcs, which exist
// only to mutate package state) that are not allowlisted.
func TestNoPackageLevelMutableState(t *testing.T) {
	for _, dir := range forkCriticalPackages {
		pkg := filepath.Base(dir)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			// Test files run outside forked worlds; only shipped code is
			// shared between a template and its forks.
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, p := range pkgs {
			for filename, file := range p.Files {
				base := filepath.Base(filename)
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.GenDecl:
						if d.Tok != token.VAR {
							continue
						}
						for _, spec := range d.Specs {
							vs := spec.(*ast.ValueSpec)
							for _, name := range vs.Names {
								if name.Name == "_" {
									continue
								}
								key := pkg + "/" + base + ":" + name.Name
								if !allowlist[key] {
									t.Errorf("%s: package-level var %q is not on the fork-safety allowlist.\n"+
										"Worlds forked from a device.Template share package state; a mutable var here\n"+
										"leaks between forks. Move the state into a struct the fork.go deep-copy\n"+
										"reaches, or — if it is truly immutable after init — add %q to the\n"+
										"allowlist in internal/forksafety with an audit comment.",
										fset.Position(name.Pos()), key, key)
								}
							}
						}
					case *ast.FuncDecl:
						if d.Name.Name == "init" && d.Recv == nil {
							t.Errorf("%s: func init() in fork-critical package %s.\n"+
								"init funcs exist to mutate package-level state, which forked worlds share.\n"+
								"Initialize through the device.Spec path instead.",
								fset.Position(d.Pos()), pkg)
						}
					}
				}
			}
		}
	}
}
