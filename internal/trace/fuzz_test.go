package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rchdroid/internal/sim"
	"rchdroid/internal/trace"
)

// FuzzTraceExport drives a tracer with an arbitrary op sequence —
// unmatched Begins, Ends with no Begin, async spans never closed, flows
// to nowhere, ring wraparound — and requires that export never panics,
// always yields valid JSON, and always re-parses.
func FuzzTraceExport(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{2, 2, 2, 2})          // nothing but Begins: all spans unfinished
	f.Add([]byte{3, 3, 3})             // Ends with no Begin
	f.Add([]byte{9, 0, 9, 1, 9, 4})    // interleaved registrations
	f.Add(bytes.Repeat([]byte{1}, 64)) // ring wraparound on instants
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tr := range []*trace.Tracer{trace.New(nil), trace.NewRing(nil, 16)} {
			sched := sim.NewScheduler()
			tr.BindClock(sched)
			names := []string{"a", "b\"c", "d\n", "", "launch:create", "α"}
			track := tr.RegisterThread(tr.RegisterProcess("p"), "t")
			for i, op := range data {
				name := names[i%len(names)]
				// Move virtual time so timestamps vary.
				sched.Advance(time.Duration(op) * time.Microsecond)
				switch op % 10 {
				case 0:
					tr.Complete(track, name, "c", sched.Now(), time.Duration(int(op)-128)*time.Millisecond,
						trace.Arg{Key: "k", Val: int(op)})
				case 1:
					tr.Instant(track, name, "c", trace.Arg{Key: "d", Val: time.Duration(op)})
				case 2:
					tr.Begin(track, name, "c")
				case 3:
					tr.End(track, name)
				case 4:
					tr.Counter(track, name, float64(op))
				case 5:
					tr.AsyncBegin(track, name, "c", tr.NextID())
				case 6:
					tr.AsyncEnd(track, name, "c", uint64(op)) // possibly unmatched id
				case 7:
					tr.FlowStart(track, name, "c", tr.NextID())
				case 8:
					tr.FlowFinish(track, name, "c", uint64(op))
				case 9:
					track = tr.RegisterThread(tr.RegisterProcess(name), name)
				}
			}
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("invalid JSON: %q", buf.String())
			}
			if _, _, err := trace.ReadJSON(&buf); err != nil {
				t.Fatalf("ReadJSON of own export: %v", err)
			}
		}
	})
}
