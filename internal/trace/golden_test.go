package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/benchapp"
	"rchdroid/internal/chaos"
	"rchdroid/internal/core"
	"rchdroid/internal/costmodel"
	"rchdroid/internal/logcat"
	"rchdroid/internal/sim"
	"rchdroid/internal/trace"
)

// runChaoticScenario boots the full stack — system server, benchmark
// app, RCHDroid, a seeded chaos plan, logcat — with every layer wired
// to one tracer, runs a touch plus three rotations, and returns the
// tracer. This is the rchsim -trace pipeline as a library call.
func runChaoticScenario(t *testing.T, seed uint64) *trace.Tracer {
	t.Helper()
	sched := sim.NewScheduler()
	tracer := trace.New(sched)
	model := costmodel.Default()
	sys := atms.New(sched, model)
	sys.SetTracer(tracer)
	lc := logcat.New(sched, 256)
	lc.SetTracer(tracer)
	sys.SetLogcat(lc)
	proc := app.NewProcess(sched, model, benchapp.New(benchapp.Config{
		Images:    4,
		TaskDelay: 400 * time.Millisecond,
	}))
	proc.SetTracer(tracer)
	plan := chaos.NewPlan(seed, chaos.Light())
	plan.BindClock(sched)
	plan.SetTracer(tracer)
	opts := core.DefaultOptions()
	opts.Chaos = plan
	core.Install(sys, proc, opts)
	plan.Install(sys, proc)

	sys.LaunchApp(proc)
	sched.Advance(2 * time.Second)
	benchapp.TouchButton(proc)
	sched.Advance(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		sys.PushConfiguration(sys.GlobalConfig().Rotated())
		sched.Advance(2 * time.Second)
	}
	if proc.Crashed() {
		t.Fatalf("seed %d: RCHDroid run crashed: %v", seed, proc.CrashCause())
	}
	return tracer
}

// TestGoldenTraceDeterminism is the determinism contract: two runs of
// the same scenario under the same chaos seed must export byte-identical
// trace JSON, and the trace must carry every event class the acceptance
// criteria name — looper dispatch spans, all core lifecycle phases, a
// coin-flip decision and the injected chaos — on one shared timeline.
func TestGoldenTraceDeterminism(t *testing.T) {
	const seed = 7
	a := runChaoticScenario(t, seed)
	b := runChaoticScenario(t, seed)

	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("same seed, different traces: %d vs %d bytes", ja.Len(), jb.Len())
	}
	if !json.Valid(ja.Bytes()) {
		t.Fatal("export is not valid JSON")
	}

	spanNames := map[string]bool{}
	var coinFlips, chaosEvents, looperSpans int
	var handlingOpen, handlingClosed int
	for _, e := range a.Events() {
		switch e.Ph {
		case trace.PhaseComplete:
			spanNames[e.Name] = true
			if e.Cat == "looper" {
				looperSpans++
			}
		case trace.PhaseInstant:
			if e.Name == "coinFlip" {
				coinFlips++
			}
			if e.Cat == "chaos" {
				chaosEvents++
			}
		case trace.PhaseAsyncBegin:
			handlingOpen++
		case trace.PhaseAsyncEnd:
			handlingClosed++
		}
	}
	if looperSpans == 0 {
		t.Error("no looper dispatch spans")
	}
	// The core lifecycle: pause-free launch phases plus every RCHDroid
	// handling phase of the flip and init paths.
	for _, phase := range []string{
		"launch:create", "launch:restore", "launch:resume",
		"rch:enterShadow", "rch:buildMapping",
		"rch:enterShadow(flip)", "rch:flip", "rch:flipResume",
	} {
		if !spanNames[phase] {
			t.Errorf("lifecycle phase %q missing from trace", phase)
		}
	}
	if coinFlips == 0 {
		t.Error("no coin-flip decision instants")
	}
	if chaosEvents == 0 {
		t.Error("no chaos injection instants (seed 7 injects under Light)")
	}
	if handlingOpen == 0 || handlingOpen != handlingClosed {
		t.Errorf("runtime-change async spans unbalanced: %d open, %d closed",
			handlingOpen, handlingClosed)
	}
}

// TestOracleRingTraceDeterminism checks the failure-dump path: a bounded
// ring tracer over the same seeded run twice yields identical JSON even
// after the ring has discarded history.
func TestOracleRingTraceDeterminism(t *testing.T) {
	run := func() []byte {
		sched := sim.NewScheduler()
		tracer := trace.NewRing(sched, 64)
		sys := atms.New(sched, costmodel.Default())
		sys.SetTracer(tracer)
		proc := app.NewProcess(sched, costmodel.Default(), benchapp.New(benchapp.Config{Images: 2}))
		proc.SetTracer(tracer)
		core.Install(sys, proc, core.DefaultOptions())
		sys.LaunchApp(proc)
		sched.Advance(2 * time.Second)
		for i := 0; i < 4; i++ {
			sys.PushConfiguration(sys.GlobalConfig().Rotated())
			sched.Advance(2 * time.Second)
		}
		raw, err := tracer.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if tracer.Dropped() == 0 {
			t.Fatal("scenario too small to exercise the ring bound")
		}
		return raw
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("ring traces differ: %d vs %d bytes", len(a), len(b))
	}
}
