package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"rchdroid/internal/sim"
)

// jsonEvent is the wire form of one Chrome trace_event record. Field
// order here fixes the key order in the output; encoding/json renders
// the Args map with sorted keys, so the whole export is deterministic.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the top-level Chrome trace object.
type jsonTrace struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// usOf converts a virtual timestamp to trace microseconds (the unit
// Chrome expects). Sub-microsecond precision survives as a fraction.
func usOf(t sim.Time) float64 { return float64(time.Duration(t)) / float64(time.Microsecond) }

// usOfDur converts a duration to trace microseconds.
func usOfDur(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// argsMap renders args into the export map form.
func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = formatArgVal(a.Val)
	}
	return m
}

// toJSON converts one event to its wire form.
func toJSON(e Event) jsonEvent {
	je := jsonEvent{
		Name: e.Name,
		Cat:  e.Cat,
		Ph:   string(rune(e.Ph)),
		TS:   usOf(e.TS),
		Pid:  e.Track.Pid,
		Tid:  e.Track.Tid,
		Args: argsMap(e.Args),
	}
	if e.Ph == PhaseComplete {
		d := usOfDur(e.Dur)
		je.Dur = &d
	}
	if e.Ph == PhaseInstant {
		je.S = "t" // thread-scoped instant: renders as a tick on its track
	}
	if e.ID != 0 {
		je.ID = "0x" + strconv.FormatUint(e.ID, 16)
	}
	return je
}

// metadataEvents renders the registered process/thread names as the
// Chrome "M" records every viewer uses to label tracks. Registration
// order is deterministic, so the export is too.
func (t *Tracer) metadataEvents() []jsonEvent {
	if t == nil {
		return nil
	}
	out := make([]jsonEvent, 0, len(t.tracks))
	for _, m := range t.tracks {
		name := "process_name"
		if m.tid > 0 {
			name = "thread_name"
		}
		out = append(out, jsonEvent{
			Name: name,
			Ph:   string(rune(PhaseMetadata)),
			Pid:  m.pid,
			Tid:  m.tid,
			Args: map[string]any{"name": m.name},
		})
	}
	return out
}

// WriteJSON renders the trace as Chrome trace_event JSON — the format
// chrome://tracing and https://ui.perfetto.dev load directly. The
// output is deterministic: identical runs produce byte-identical files.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	all := make([]jsonEvent, 0, len(events)+8)
	all = append(all, t.metadataEvents()...)
	for _, e := range events {
		all = append(all, toJSON(e))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{TraceEvents: all, DisplayTimeUnit: "ms"})
}

// MarshalJSON returns the WriteJSON bytes (without the trailing newline
// the stream encoder adds).
func (t *Tracer) MarshalJSON() ([]byte, error) {
	events := t.Events()
	all := make([]jsonEvent, 0, len(events)+8)
	all = append(all, t.metadataEvents()...)
	for _, e := range events {
		all = append(all, toJSON(e))
	}
	return json.Marshal(jsonTrace{TraceEvents: all, DisplayTimeUnit: "ms"})
}

// ReadJSON parses a Chrome trace_event JSON document (either the
// {"traceEvents": [...]} object form or a bare event array) back into
// events. Metadata records are folded back into track names, returned
// as the second value keyed by TrackID (tid 0 = process name).
func ReadJSON(r io.Reader) ([]Event, map[TrackID]string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	var doc jsonTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		// Bare array form.
		var arr []jsonEvent
		if err2 := json.Unmarshal(raw, &arr); err2 != nil {
			return nil, nil, fmt.Errorf("trace: not a trace_event document: %w", err)
		}
		doc.TraceEvents = arr
	}
	names := make(map[TrackID]string)
	var events []Event
	for _, je := range doc.TraceEvents {
		if len(je.Ph) != 1 {
			continue
		}
		ph := je.Ph[0]
		if ph == PhaseMetadata {
			if n, ok := je.Args["name"].(string); ok {
				names[TrackID{Pid: je.Pid, Tid: je.Tid}] = n
			}
			continue
		}
		e := Event{
			TS:    sim.Time(time.Duration(je.TS * float64(time.Microsecond))),
			Ph:    ph,
			Name:  je.Name,
			Cat:   je.Cat,
			Track: TrackID{Pid: je.Pid, Tid: je.Tid},
		}
		if je.Dur != nil {
			e.Dur = time.Duration(*je.Dur * float64(time.Microsecond))
		}
		if len(je.ID) > 2 && je.ID[:2] == "0x" {
			if id, err := strconv.ParseUint(je.ID[2:], 16, 64); err == nil {
				e.ID = id
			}
		}
		if len(je.Args) > 0 {
			keys := make([]string, 0, len(je.Args))
			for k := range je.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Args = append(e.Args, Arg{Key: k, Val: je.Args[k]})
			}
		}
		events = append(events, e)
	}
	return events, names, nil
}
