// Package trace is the structured tracing substrate of the reproduction:
// a zero-dependency, deterministic event recorder in the mould of
// Perfetto/systrace, stamped exclusively with the virtual clock. The
// paper's whole evaluation methodology is framework-level visibility —
// systrace and profiler views of relaunches, shadow/sunny flips, lazy
// migration and shadow GC — and this package is the simulator's
// equivalent substrate: every looper message, lifecycle phase, ATMS
// decision and injected fault lands on one shared timeline.
//
// Events follow the Chrome trace_event model (the format both
// chrome://tracing and the Perfetto UI load):
//
//   - complete spans ("X"): an interval with a duration — a dispatched
//     looper message, a charged lifecycle phase;
//   - instants ("i"): a point — a coin-flip decision, a chaos injection,
//     a logcat line;
//   - counters ("C"): a sampled value — bundle bytes, queue depth;
//   - async spans ("b"/"e"): an interval spanning threads — one runtime
//     change from arrival at the ATMS to the resume notification;
//   - flows ("s"/"f"): an arrow between tracks — an AsyncTask from its
//     start on the UI thread to its result delivery.
//
// Determinism is a hard contract: two runs of the same seeded scenario
// must produce byte-identical exports. Everything that could wobble is
// pinned — timestamps come from the scheduler, track ids from
// registration order, argument order from sorted keys — and nothing
// reads wall time.
//
// A nil *Tracer is valid and inert: every method no-ops, so
// instrumented hot paths cost one predictable branch when tracing is
// off.
package trace

import (
	"fmt"
	"time"

	"rchdroid/internal/sim"
)

// Phase bytes, mirroring the Chrome trace_event "ph" field.
const (
	PhaseComplete   = 'X'
	PhaseInstant    = 'i'
	PhaseBegin      = 'B'
	PhaseEnd        = 'E'
	PhaseCounter    = 'C'
	PhaseAsyncBegin = 'b'
	PhaseAsyncEnd   = 'e'
	PhaseFlowStart  = 's'
	PhaseFlowFinish = 'f'
	PhaseMetadata   = 'M'
)

// TrackID addresses one timeline row: a (process, thread) pair in the
// Chrome model. The zero TrackID is the anonymous track 0/0.
type TrackID struct {
	Pid int
	Tid int
}

// Arg is one key/value annotation on an event. Values may be strings,
// ints, floats, bools or time.Durations; anything else is rendered with
// %v. Export sorts args by key, so emission order never matters.
type Arg struct {
	Key string
	Val any
}

// Event is one record on the timeline.
type Event struct {
	// TS is the virtual timestamp.
	TS sim.Time
	// Dur is the span length (complete events only).
	Dur time.Duration
	// Ph is the phase byte (PhaseComplete, PhaseInstant, ...).
	Ph byte
	// Name labels the event; span histograms group by it.
	Name string
	// Cat is the category ("looper", "lifecycle", "atms", "chaos", ...).
	Cat string
	// Track is the timeline row the event belongs to.
	Track TrackID
	// ID links async spans and flow arrows (0 = unlinked).
	ID uint64
	// Args carries the structured annotations.
	Args []Arg
}

// trackMeta names a registered process or thread for the metadata
// events of the export.
type trackMeta struct {
	pid  int
	tid  int // 0 for the process-level record
	name string
}

// Tracer records events against a virtual clock. It is not safe for
// concurrent use — the simulation is single-threaded by design, and so
// is its observer.
type Tracer struct {
	sched *sim.Scheduler

	// ring holds the events. With cap == 0 it grows without bound;
	// otherwise it is a ring buffer that discards the oldest events, so a
	// bounded tracer always retains the tail of the run — the part a
	// failure report needs.
	ring    []Event
	cap     int
	start   int
	count   int
	dropped int

	tracks  []trackMeta
	nextPid int
	nextID  uint64
}

// New returns an unbounded tracer stamping events with sched's clock. A
// nil scheduler is allowed; events are then stamped 0 unless the clock
// is bound later.
func New(sched *sim.Scheduler) *Tracer {
	return &Tracer{sched: sched, nextPid: 1}
}

// NewRing returns a tracer retaining at most capacity events (oldest
// dropped first). Track registrations are kept outside the ring, so a
// dump stays well-formed however much history has been discarded.
func NewRing(sched *sim.Scheduler, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{sched: sched, cap: capacity, ring: make([]Event, capacity), nextPid: 1}
}

// Enabled reports whether the tracer records anything — false for nil.
// Hot paths use it to skip argument construction entirely.
func (t *Tracer) Enabled() bool { return t != nil }

// BindClock attaches (or replaces) the scheduler used for timestamps.
func (t *Tracer) BindClock(s *sim.Scheduler) {
	if t == nil {
		return
	}
	t.sched = s
}

// now returns the current virtual time, 0 with no clock bound.
func (t *Tracer) now() sim.Time {
	if t.sched == nil {
		return 0
	}
	return t.sched.Now()
}

// RegisterProcess allocates a pid for a named process row. Pids are
// handed out in registration order, which a deterministic scenario
// reproduces exactly.
func (t *Tracer) RegisterProcess(name string) int {
	if t == nil {
		return 0
	}
	pid := t.nextPid
	t.nextPid++
	t.tracks = append(t.tracks, trackMeta{pid: pid, name: name})
	return pid
}

// RegisterThread allocates a tid under pid and returns the full track.
// Tids count from 1 within each process.
func (t *Tracer) RegisterThread(pid int, name string) TrackID {
	if t == nil {
		return TrackID{}
	}
	tid := 1
	for _, m := range t.tracks {
		if m.pid == pid && m.tid > 0 {
			tid++
		}
	}
	t.tracks = append(t.tracks, trackMeta{pid: pid, tid: tid, name: name})
	return TrackID{Pid: pid, Tid: tid}
}

// NextID allocates a fresh flow/async id (never 0).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	return t.nextID
}

// push appends an event, honouring the ring bound.
func (t *Tracer) push(e Event) {
	if t.cap == 0 {
		t.ring = append(t.ring, e)
		t.count++
		return
	}
	if t.count < t.cap {
		t.ring[(t.start+t.count)%t.cap] = e
		t.count++
		return
	}
	t.ring[t.start] = e
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Complete records a span [start, start+dur) on the track. Spans are
// emitted at completion time in the simulator (costs are known by
// then), so start may lie before the current clock.
func (t *Tracer) Complete(tr TrackID, name, cat string, start sim.Time, dur time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.push(Event{TS: start, Dur: dur, Ph: PhaseComplete, Name: name, Cat: cat, Track: tr, Args: args})
}

// Instant records a point event at the current virtual time.
func (t *Tracer) Instant(tr TrackID, name, cat string, args ...Arg) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseInstant, Name: name, Cat: cat, Track: tr, Args: args})
}

// Begin opens a nesting span on the track. Pair with End; an unmatched
// Begin is legal (the export and summary both tolerate it).
func (t *Tracer) Begin(tr TrackID, name, cat string, args ...Arg) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseBegin, Name: name, Cat: cat, Track: tr, Args: args})
}

// End closes the innermost open span on the track. An unmatched End is
// legal.
func (t *Tracer) End(tr TrackID, name string) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseEnd, Name: name, Track: tr})
}

// Counter samples a named value at the current virtual time; the value
// renders as a counter track in the Perfetto UI.
func (t *Tracer) Counter(tr TrackID, name string, value float64) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseCounter, Name: name, Track: tr,
		Args: []Arg{{Key: "value", Val: value}}})
}

// AsyncBegin opens an async span (id-matched, may cross tracks) — used
// for the end-to-end runtime-change handling interval.
func (t *Tracer) AsyncBegin(tr TrackID, name, cat string, id uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseAsyncBegin, Name: name, Cat: cat, Track: tr, ID: id, Args: args})
}

// AsyncEnd closes the async span with the matching id.
func (t *Tracer) AsyncEnd(tr TrackID, name, cat string, id uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseAsyncEnd, Name: name, Cat: cat, Track: tr, ID: id, Args: args})
}

// FlowStart drops the tail of a flow arrow at the current time — e.g.
// where an AsyncTask was started.
func (t *Tracer) FlowStart(tr TrackID, name, cat string, id uint64) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseFlowStart, Name: name, Cat: cat, Track: tr, ID: id})
}

// FlowFinish drops the head of the flow arrow — where the result landed.
func (t *Tracer) FlowFinish(tr TrackID, name, cat string, id uint64) {
	if t == nil {
		return
	}
	t.push(Event{TS: t.now(), Ph: PhaseFlowFinish, Name: name, Cat: cat, Track: tr, ID: id})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Dropped returns how many events the ring displaced.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.count)
	if t.cap == 0 {
		return append(out, t.ring[:t.count]...)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(t.start+i)%t.cap])
	}
	return out
}

// formatArgVal renders an argument value deterministically.
func formatArgVal(v any) any {
	switch x := v.(type) {
	case time.Duration:
		return x.String()
	case sim.Time:
		return x.String()
	case string, bool, float64, float32,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
