package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rchdroid/internal/sim"
	"rchdroid/internal/trace"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *trace.Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be callable on nil without panicking.
	tr.BindClock(nil)
	track := tr.RegisterThread(tr.RegisterProcess("p"), "t")
	tr.Complete(track, "a", "c", 0, time.Millisecond)
	tr.Instant(track, "b", "c")
	tr.Begin(track, "d", "c")
	tr.End(track, "d")
	tr.Counter(track, "e", 1)
	tr.AsyncBegin(track, "f", "c", tr.NextID())
	tr.AsyncEnd(track, "f", "c", 0)
	tr.FlowStart(track, "g", "c", 1)
	tr.FlowFinish(track, "g", "c", 1)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained something")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestTrackRegistrationOrder(t *testing.T) {
	tr := trace.New(nil)
	p1 := tr.RegisterProcess("system_server")
	p2 := tr.RegisterProcess("app")
	if p1 != 1 || p2 != 2 {
		t.Fatalf("pids = %d, %d; want 1, 2", p1, p2)
	}
	a := tr.RegisterThread(p2, "ui")
	b := tr.RegisterThread(p2, "async")
	c := tr.RegisterThread(p1, "atms")
	if a != (trace.TrackID{Pid: 2, Tid: 1}) || b != (trace.TrackID{Pid: 2, Tid: 2}) {
		t.Fatalf("tids = %v, %v", a, b)
	}
	if c != (trace.TrackID{Pid: 1, Tid: 1}) {
		t.Fatalf("tid under pid 1 = %v", c)
	}
}

func TestRingKeepsTail(t *testing.T) {
	tr := trace.NewRing(nil, 4)
	track := tr.RegisterThread(tr.RegisterProcess("p"), "t")
	for i := 0; i < 10; i++ {
		tr.Instant(track, string(rune('a'+i)), "c")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	got := ""
	for _, e := range evs {
		got += e.Name
	}
	if got != "ghij" {
		t.Fatalf("ring tail = %q, want \"ghij\"", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sched := sim.NewScheduler()
	tr := trace.New(sched)
	pid := tr.RegisterProcess("app")
	track := tr.RegisterThread(pid, "ui")
	sched.After(10*time.Millisecond, "tick", func() {
		tr.Complete(track, "work", "looper", sched.Now(), 3*time.Millisecond,
			trace.Arg{Key: "wait", Val: 2 * time.Millisecond})
		tr.Instant(track, "mark", "rch", trace.Arg{Key: "n", Val: 7})
		id := tr.NextID()
		tr.AsyncBegin(track, "span", "handling", id)
		tr.AsyncEnd(track, "span", "handling", id)
	})
	sched.Run()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, names, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if names[trace.TrackID{Pid: 1, Tid: 1}] != "ui" || names[trace.TrackID{Pid: 1}] != "app" {
		t.Fatalf("names = %v", names)
	}
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	want := sim.Time(10 * time.Millisecond)
	if evs[0].TS != want || evs[0].Dur != 3*time.Millisecond || evs[0].Ph != trace.PhaseComplete {
		t.Fatalf("span round-trip: %+v", evs[0])
	}
	if evs[2].ID == 0 || evs[2].ID != evs[3].ID {
		t.Fatalf("async ids diverged: %d vs %d", evs[2].ID, evs[3].ID)
	}
	// The duration arg survives as its deterministic string form.
	found := false
	for _, a := range evs[0].Args {
		if a.Key == "wait" && a.Val == "2ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wait arg lost: %+v", evs[0].Args)
	}
}

func TestBareArrayForm(t *testing.T) {
	in := `[{"name":"x","ph":"i","ts":1.5,"pid":1,"tid":1,"s":"t"}]`
	evs, _, err := trace.ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "x" || evs[0].Ph != trace.PhaseInstant {
		t.Fatalf("bare array parse: %+v", evs)
	}
}
