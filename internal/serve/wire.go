// Package serve is the fleet layer: a long-running service hosting many
// concurrent virtual devices, sharded across goroutine pools, behind a
// line-delimited JSON wire API. Its job is robustness — the fleet-scale
// analogue of the per-activity guard ladder:
//
//   - Containment: a device whose callbacks panic is recovered, counted,
//     torn down (optionally respawned), and its shard keeps serving.
//   - Admission control: bounded per-shard queues; a full queue sheds the
//     request with an explicit error instead of growing without bound.
//   - Deadlines: a wall-clock request deadline complements the sim-clock
//     watchdog in internal/guard — requests that waited too long in the
//     queue are shed before they run.
//   - Circuit breaking: repeated device failures quarantine the shard
//     (serving → quarantined → probation → serving), mirroring the
//     guard's per-activity ladder at fleet scope.
//   - Graceful drain: stop admitting, finish or cancel queued work under
//     a drain deadline, flush metrics, and report clean-vs-forced.
//
// Each shard owns a private obs.Registry; obs.MergeSnapshots folds them
// into one aggregate whose canonical (sim-domain) rendering is
// byte-identical regardless of shard count. Every serve-layer metric is
// wall-domain by design: the canonical surface carries only what canary
// runs record through the sweep runners, so a fleet canary dump
// byte-compares equal to an rchsweep dump over the same seeds.
//
// The package is fork-critical (worlds fork inside shards), so it keeps
// zero package-level mutable state — internal/forksafety enforces it.
package serve

import "encoding/json"

// Op names accepted on the wire.
const (
	// OpBoot forks (or fresh-builds) a resident device on the shard that
	// owns the device name.
	OpBoot = "boot"
	// OpDrive runs a burst on a resident device: a config change, a
	// monkey burst, a chaos storm, or a diagnostic stall.
	OpDrive = "drive"
	// OpBatch carries a burst of drive steps in one wire round-trip. The
	// server splits the steps by owning shard, dispatches each shard's
	// sub-batch through its queue (the shards run in parallel), and
	// merges the per-step results back into one reply — the batched
	// cross-shard dispatch that lets a replay client push an event burst
	// without paying one round-trip per event.
	OpBatch = "batch"
	// OpCanary runs one differential-oracle seed through the exact sweep
	// runner rchsweep uses, recording the same canonical metrics.
	OpCanary = "canary"
	// OpStats returns the merged metric snapshot (full and canonical).
	OpStats = "stats"
	// OpHealth returns readiness plus per-shard breaker/queue state.
	OpHealth = "health"
)

// Drive kinds.
const (
	// KindRotate pushes one rotation and settles.
	KindRotate = "rotate"
	// KindNight and KindDay toggle the UI mode and settle.
	KindNight = "night"
	KindDay   = "day"
	// KindSwitch is an app switch: the foreground activity is sent to the
	// background (pausing and stopping, releasing its shadow under
	// RCHDroid) and then brought back to the foreground — the leave-and-
	// return cycle a user's task switch costs the app.
	KindSwitch = "switch"
	// KindTrim delivers a low-memory pressure signal (onTrimMemory): the
	// change handler gives up reclaimable instances.
	KindTrim = "trim"
	// KindMonkey drives a seeded monkey burst (Events events).
	KindMonkey = "monkey"
	// KindChaos arms a seeded chaos plan and drives rotations through it.
	KindChaos = "chaos"
	// KindSleep stalls the shard for Millis of wall time — a diagnostic
	// load generator for exercising shedding and drain deadlines.
	KindSleep = "sleep"
)

// ErrCode classifies why a request was refused or failed. Codes are the
// machine-readable half of the explicit-shedding contract: a client can
// always tell backpressure (CodeOverloaded, CodeDeadline), fleet
// protection (CodeQuarantined), lifecycle (CodeDraining, CodeAborted)
// and device faults (CodeDevicePanic, CodeBootFailed) apart.
type ErrCode string

const (
	// CodeOverloaded — the shard queue (or its device table) is full.
	CodeOverloaded ErrCode = "overloaded"
	// CodeQuarantined — the shard's circuit breaker is open.
	CodeQuarantined ErrCode = "quarantined"
	// CodeDraining — the server is draining and admits nothing new.
	CodeDraining ErrCode = "draining"
	// CodeDeadline — the request exceeded its wall deadline in the queue
	// and was shed before running.
	CodeDeadline ErrCode = "deadline"
	// CodeAborted — the drain deadline expired before this request ran.
	CodeAborted ErrCode = "aborted"
	// CodeDevicePanic — the device's callbacks panicked; the panic was
	// contained and the device torn down.
	CodeDevicePanic ErrCode = "device_panic"
	// CodeBootFailed — the device world failed to settle after the
	// configured retries.
	CodeBootFailed ErrCode = "boot_failed"
	// CodeUnknownDevice — the named device is not resident on its shard.
	CodeUnknownDevice ErrCode = "unknown_device"
	// CodeBadRequest — the request was malformed.
	CodeBadRequest ErrCode = "bad_request"
)

// Request is one line of the wire protocol.
type Request struct {
	// ID is echoed on the response so clients can pipeline.
	ID string `json:"id,omitempty"`
	// Op selects the operation (Op* constants).
	Op string `json:"op"`
	// Device names the target device for boot/drive. The name, not the
	// client, decides the owning shard.
	Device string `json:"device,omitempty"`
	// Spec picks the device spec for boot (Spec* constants; empty means
	// SpecOracle).
	Spec string `json:"spec,omitempty"`
	// Handler picks the change handler armed at boot: "rch" (default),
	// "guarded", or "stock".
	Handler string `json:"handler,omitempty"`
	// Seed drives boot forking, monkey/chaos bursts, and canary runs.
	Seed uint64 `json:"seed,omitempty"`
	// Kind selects the drive burst (Kind* constants).
	Kind string `json:"kind,omitempty"`
	// Events sizes a monkey burst.
	Events int `json:"events,omitempty"`
	// Millis sizes a sleep stall.
	Millis int `json:"millis,omitempty"`
	// Batch carries the drive steps of an OpBatch request.
	Batch []BatchStep `json:"batch,omitempty"`
}

// BatchStep is one drive step inside an OpBatch request. It is the
// drive subset of Request: each step targets a resident device (the
// device name decides the owning shard, exactly as it does for OpDrive).
type BatchStep struct {
	// Device names the target device.
	Device string `json:"device"`
	// Kind selects the drive burst (Kind* constants).
	Kind string `json:"kind"`
	// Seed drives monkey/chaos bursts.
	Seed uint64 `json:"seed,omitempty"`
	// Events sizes a monkey burst.
	Events int `json:"events,omitempty"`
	// Millis sizes a sleep stall.
	Millis int `json:"millis,omitempty"`
}

// BatchResult is one step's outcome inside an OpBatch reply, in the
// request's step order (Index is the step's position in Request.Batch).
type BatchResult struct {
	Index int  `json:"index"`
	OK    bool `json:"ok"`
	// Code is set on every non-OK step (ErrCode constants) — the same
	// machine-readable shed/fault contract individual requests get.
	Code   ErrCode `json:"code,omitempty"`
	Detail string  `json:"detail,omitempty"`
	// Shard is the shard that owned (or refused) the step.
	Shard int `json:"shard"`
}

// Response is one reply line.
type Response struct {
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Code is set on every non-OK response (ErrCode constants).
	Code ErrCode `json:"code,omitempty"`
	// Detail is the human-readable half.
	Detail string `json:"detail,omitempty"`
	// Shard is the shard that owned (or refused) the request; -1 when no
	// shard was involved.
	Shard int `json:"shard"`
	// Token is the booted device's root activity token.
	Token int `json:"token,omitempty"`
	// Failures carries canary contract-failure lines.
	Failures []string `json:"failures,omitempty"`
	// Results carries per-step outcomes for OpBatch, ordered by step
	// index. The reply-level OK is the conjunction of the steps; Code is
	// the first failing step's code.
	Results []BatchResult `json:"results,omitempty"`
	// Shards carries per-shard health (OpHealth).
	Shards []ShardHealth `json:"shards,omitempty"`
	// Metrics and Canonical carry the merged snapshot (OpStats): the
	// full dump and its canonical sim-domain subset. RawMessage keeps
	// them JSON (the encoder compacts them onto the reply line).
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	Canonical json.RawMessage `json:"canonical,omitempty"`
}

// ShardHealth is one shard's live state.
type ShardHealth struct {
	Shard int `json:"shard"`
	// State is the breaker rung: "serving", "quarantined", "probation".
	State string `json:"state"`
	// Devices is the resident device count.
	Devices int `json:"devices"`
	// QueueLen is the current queue depth.
	QueueLen int `json:"queue_len"`
}
