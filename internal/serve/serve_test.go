package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rchdroid/internal/device"
	"rchdroid/internal/obs"
	"rchdroid/internal/sweep"
)

// submit is a test shorthand.
func submit(s *Server, req Request) Response { return s.Submit(req) }

// TestBootAndDrive: the happy path — a device boots, survives config
// changes and a monkey burst, and health reports it resident.
func TestBootAndDrive(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Drain(5 * time.Second)

	r := submit(s, Request{Op: OpBoot, Device: "dev-1", Seed: 7})
	if !r.OK || r.Token == 0 {
		t.Fatalf("boot failed: %+v", r)
	}
	for _, kind := range []string{KindRotate, KindNight, KindDay} {
		if r := submit(s, Request{Op: OpDrive, Device: "dev-1", Kind: kind}); !r.OK {
			t.Fatalf("drive %s failed: %+v", kind, r)
		}
	}
	if r := submit(s, Request{Op: OpDrive, Device: "dev-1", Kind: KindMonkey, Events: 40, Seed: 3}); !r.OK {
		t.Fatalf("monkey failed: %+v", r)
	}
	if r := submit(s, Request{Op: OpDrive, Device: "nope", Kind: KindRotate}); r.OK || r.Code != CodeUnknownDevice {
		t.Fatalf("drive on unknown device: %+v", r)
	}
	h := submit(s, Request{Op: OpHealth})
	if !h.OK || len(h.Shards) != 2 {
		t.Fatalf("health: %+v", h)
	}
	total := 0
	for _, sh := range h.Shards {
		total += sh.Devices
	}
	if total != 1 {
		t.Fatalf("health reports %d devices, want 1", total)
	}
}

// TestPanicContainment: a panic-on-relaunch device under the stock
// handler blows up on its first rotation with a real Go panic; the
// shard contains it, tears the device down, counts it, and keeps
// serving other devices.
func TestPanicContainment(t *testing.T) {
	s := New(Config{Shards: 1, Breaker: BreakerConfig{Threshold: 100}})
	defer s.Drain(5 * time.Second)

	if r := submit(s, Request{Op: OpBoot, Device: "healthy", Seed: 1}); !r.OK {
		t.Fatalf("healthy boot: %+v", r)
	}
	if r := submit(s, Request{Op: OpBoot, Device: "bomb", Spec: SpecPanicRelaunch, Handler: HandlerStock, Seed: 2}); !r.OK {
		t.Fatalf("panic spec must boot clean: %+v", r)
	}
	r := submit(s, Request{Op: OpDrive, Device: "bomb", Kind: KindRotate})
	if r.OK || r.Code != CodeDevicePanic {
		t.Fatalf("rotate of panic spec: want contained device_panic, got %+v", r)
	}
	if !strings.Contains(r.Detail, "torn down") {
		t.Fatalf("panic detail missing teardown note: %q", r.Detail)
	}
	// The panicking device is gone; the shard and its other device are
	// not.
	if r := submit(s, Request{Op: OpDrive, Device: "bomb", Kind: KindRotate}); r.Code != CodeUnknownDevice {
		t.Fatalf("panicked device should be torn down: %+v", r)
	}
	if r := submit(s, Request{Op: OpDrive, Device: "healthy", Kind: KindRotate}); !r.OK {
		t.Fatalf("shard stopped serving after a contained panic: %+v", r)
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_device_panics_total"); got != 1 {
		t.Fatalf("serve_device_panics_total = %d, want 1", got)
	}
}

// TestPanicRespawn: with RespawnPanicked set the device comes back
// under its name after containment.
func TestPanicRespawn(t *testing.T) {
	s := New(Config{Shards: 1, RespawnPanicked: true, Breaker: BreakerConfig{Threshold: 100}})
	defer s.Drain(5 * time.Second)

	if r := submit(s, Request{Op: OpBoot, Device: "bomb", Spec: SpecPanicRelaunch, Handler: HandlerStock, Seed: 2}); !r.OK {
		t.Fatalf("boot: %+v", r)
	}
	r := submit(s, Request{Op: OpDrive, Device: "bomb", Kind: KindRotate})
	if r.OK || r.Code != CodeDevicePanic || !strings.Contains(r.Detail, "respawned") {
		t.Fatalf("want contained panic with respawn, got %+v", r)
	}
	// The respawned instance serves again (and panics again on rotate —
	// it is the same spec — proving the respawn really booted it).
	if r := submit(s, Request{Op: OpDrive, Device: "bomb", Kind: KindRotate}); r.Code != CodeDevicePanic {
		t.Fatalf("respawned device not resident: %+v", r)
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_device_respawns_total"); got < 1 {
		t.Fatalf("serve_device_respawns_total = %d, want >= 1", got)
	}
}

// TestAdmissionControl: a stalled shard sheds excess load with explicit
// CodeOverloaded errors instead of queueing without bound or hanging.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 2})
	defer s.Drain(5 * time.Second)

	var wg sync.WaitGroup
	results := make(chan Response, 16)
	// One long stall occupies the shard; the flood behind it can keep at
	// most QueueDepth waiting.
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- submit(s, Request{Op: OpDrive, Kind: KindSleep, Millis: 60})
		}()
	}
	wg.Wait()
	close(results)
	shed, served := 0, 0
	for r := range results {
		switch {
		case r.OK:
			served++
		case r.Code == CodeOverloaded:
			shed++
		default:
			t.Fatalf("unexpected response: %+v", r)
		}
	}
	if shed == 0 {
		t.Fatalf("no request shed (served=%d) — queue grew beyond its bound", served)
	}
	if served == 0 {
		t.Fatal("every request shed — admission admitted nothing")
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_shed_overload_total"); got != int64(shed) {
		t.Fatalf("serve_shed_overload_total = %d, want %d", got, shed)
	}
}

// TestRequestDeadline: requests that overstay the wall deadline in the
// queue are shed with CodeDeadline before running.
func TestRequestDeadline(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8, RequestDeadline: 10 * time.Millisecond})
	defer s.Drain(5 * time.Second)

	var wg sync.WaitGroup
	results := make(chan Response, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- submit(s, Request{Op: OpDrive, Kind: KindSleep, Millis: 40})
		}()
	}
	wg.Wait()
	close(results)
	deadline := 0
	for r := range results {
		if !r.OK && r.Code == CodeDeadline {
			deadline++
		}
	}
	if deadline == 0 {
		t.Fatal("no request hit the wall deadline")
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_shed_deadline_total"); got != int64(deadline) {
		t.Fatalf("serve_shed_deadline_total = %d, want %d", got, deadline)
	}
	if got := metricValue(snap, "serve_deadline_overruns_total"); got == 0 {
		t.Fatal("the 40ms sleep should have been counted as a deadline overrun")
	}
}

// TestBreakerLadder walks the full shard-scope ladder: repeated device
// panics quarantine the shard (admission sheds with CodeQuarantined),
// the OpenFor window expires into probation, probe successes recover
// it, and a probe failure re-opens it.
func TestBreakerLadder(t *testing.T) {
	s := New(Config{Shards: 1, Breaker: BreakerConfig{
		Threshold: 2, OpenFor: 30 * time.Millisecond, ProbationSuccesses: 2,
	}})
	defer s.Drain(5 * time.Second)

	// Boot the bombs first, then blow them back to back: the failure
	// count is *consecutive*, so a boot success in between would reset
	// it (deliberately — a shard that still boots devices fine is not
	// sick).
	boot := func(name string) {
		t.Helper()
		if r := submit(s, Request{Op: OpBoot, Device: name, Spec: SpecPanicRelaunch, Handler: HandlerStock, Seed: 9}); !r.OK {
			t.Fatalf("boot %s: %+v", name, r)
		}
	}
	blow := func(name string) Response {
		return submit(s, Request{Op: OpDrive, Device: name, Kind: KindRotate})
	}
	boot("b1")
	boot("b2")
	if r := blow("b1"); r.Code != CodeDevicePanic {
		t.Fatalf("first panic: %+v", r)
	}
	if r := blow("b2"); r.Code != CodeDevicePanic {
		t.Fatalf("second panic: %+v", r)
	}
	// Two consecutive device failures at Threshold=2: open.
	r := submit(s, Request{Op: OpBoot, Device: "later", Seed: 1})
	if r.OK || r.Code != CodeQuarantined {
		t.Fatalf("quarantined shard admitted a request: %+v", r)
	}
	if h := submit(s, Request{Op: OpHealth}); h.OK || h.Shards[0].State != "quarantined" {
		t.Fatalf("health during quarantine: %+v", h)
	}
	// Past the window: probes flow; two successes recover the shard.
	time.Sleep(40 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if r := submit(s, Request{Op: OpBoot, Device: fmt.Sprintf("probe-%d", i), Seed: uint64(i + 1)}); !r.OK {
			t.Fatalf("probe %d rejected: %+v", i, r)
		}
	}
	if h := submit(s, Request{Op: OpHealth}); !h.OK || h.Shards[0].State != "serving" {
		t.Fatalf("shard did not recover: %+v", h)
	}
	// A fresh failure run re-opens from serving; then a probe that
	// fails (b5's rotate right after the window) re-opens immediately.
	boot("b3")
	boot("b4")
	if r := blow("b3"); r.Code != CodeDevicePanic {
		t.Fatalf("b3: %+v", r)
	}
	if r := blow("b4"); r.Code != CodeDevicePanic {
		t.Fatalf("b4: %+v", r)
	}
	time.Sleep(40 * time.Millisecond)
	boot("b5")                                      // probe success
	if r := blow("b5"); r.Code != CodeDevicePanic { // probe failure
		t.Fatalf("b5: %+v", r)
	}
	if r := submit(s, Request{Op: OpBoot, Device: "again", Seed: 1}); r.Code != CodeQuarantined {
		t.Fatalf("failed probe must re-quarantine: %+v", r)
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_breaker_opens_total"); got != 3 {
		t.Fatalf("serve_breaker_opens_total = %d, want 3", got)
	}
}

// TestCanaryCanonicalMatchesSweep is the fleet half of the determinism
// contract: the same canary seeds, partitioned across shards by
// round-robin, must merge to a canonical metrics dump byte-identical to
// an rchsweep oracle sweep over the same range — serve's own metrics
// are wall-domain by design and leave no trace in the canonical bytes.
func TestCanaryCanonicalMatchesSweep(t *testing.T) {
	const seeds = 12
	s := New(Config{Shards: 3, QueueDepth: seeds})
	canaryFailures := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for seed := uint64(1); seed <= seeds; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := submit(s, Request{Op: OpCanary, Seed: seed})
			mu.Lock()
			if !r.OK {
				canaryFailures++
			}
			mu.Unlock()
		}(seed)
	}
	wg.Wait()
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if canaryFailures != 0 {
		t.Fatalf("%d canary seeds failed", canaryFailures)
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rep := sweep.RunObs(sweep.Config{Mode: "oracle", Start: 1, Count: seeds, Workers: 2, Obs: reg},
		sweep.OracleRunnerForked(device.NewTemplateCache()))
	if !rep.OK() {
		t.Fatalf("sweep failed:\n%s", rep.FailureOutput())
	}
	want := string(reg.Snapshot().MarshalCanonical())
	got := string(snap.MarshalCanonical())
	if got != want {
		t.Fatalf("fleet canonical dump differs from rchsweep over the same seeds:\n--- serve\n%s\n--- sweep\n%s", got, want)
	}
}

// TestDrain: draining stops admission with CodeDraining, finishes
// queued work cleanly, and an expired deadline forces an abort that
// unblocks parked callers.
func TestDrain(t *testing.T) {
	s := New(Config{Shards: 1})
	if r := submit(s, Request{Op: OpBoot, Device: "d", Seed: 1}); !r.OK {
		t.Fatalf("boot: %+v", r)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("clean drain errored: %v", err)
	}
	if r := submit(s, Request{Op: OpBoot, Device: "late", Seed: 2}); r.OK || r.Code != CodeDraining {
		t.Fatalf("draining server admitted work: %+v", r)
	}

	// Forced abort: a stalled shard cannot finish before the deadline.
	s2 := New(Config{Shards: 1, QueueDepth: 4})
	done := make(chan Response, 2)
	go func() { done <- submit(s2, Request{Op: OpDrive, Kind: KindSleep, Millis: 300}) }()
	go func() { done <- submit(s2, Request{Op: OpDrive, Kind: KindSleep, Millis: 300}) }()
	time.Sleep(20 * time.Millisecond) // let both land (one running, one queued)
	err := s2.Drain(30 * time.Millisecond)
	if err == nil || !ForcedAbort(err) {
		t.Fatalf("want forced abort, got %v", err)
	}
	// Parked callers unblock promptly with CodeAborted (the one already
	// running may still return its real reply).
	aborted := 0
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.Code == CodeAborted {
				aborted++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("caller still parked after forced abort")
		}
	}
	if aborted == 0 {
		t.Fatal("no caller saw CodeAborted after the forced abort")
	}
}

// metricValue reads one metric's value from a snapshot.
func metricValue(snap *obs.Snapshot, name string) int64 {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return -1
}
