package serve

import (
	"sync/atomic"
	"time"
)

// Breaker states. The ladder mirrors internal/guard's per-activity
// quarantine → probation → recovery at shard scope: repeated *device*
// failures (Go panics, boot failures — never canary verdicts or
// sim-level app crashes, which are findings, not faults) open the
// breaker; after OpenFor of wall time the next request probes it; enough
// consecutive probe successes close it again.
const (
	stateServing int32 = iota
	stateQuarantined
	stateProbation
)

// BreakerConfig tunes one shard's circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive device-failure count that opens the
	// breaker (≤ 0 means 3).
	Threshold int
	// OpenFor is how long an open breaker rejects before probing
	// (≤ 0 means 2s).
	OpenFor time.Duration
	// ProbationSuccesses is how many consecutive successes close a
	// probing breaker (≤ 0 means 2).
	ProbationSuccesses int
}

func (c BreakerConfig) threshold() int32 {
	if c.Threshold > 0 {
		return int32(c.Threshold)
	}
	return 3
}

func (c BreakerConfig) openFor() time.Duration {
	if c.OpenFor > 0 {
		return c.OpenFor
	}
	return 2 * time.Second
}

func (c BreakerConfig) probation() int32 {
	if c.ProbationSuccesses > 0 {
		return int32(c.ProbationSuccesses)
	}
	return 2
}

// breaker is one shard's ladder. State transitions happen on the shard
// goroutine (onFailure/onSuccess) and on the admission path (allow's
// quarantined→probation promotion); everything is atomic so admission
// never takes a lock.
type breaker struct {
	cfg       BreakerConfig
	state     atomic.Int32
	openedAt  atomic.Int64 // wall nanos at quarantine
	fails     atomic.Int32 // consecutive device failures
	probeOKs  atomic.Int32 // consecutive successes in probation
	openCount atomic.Int64 // total times the breaker opened
}

// allow decides admission. An open breaker whose OpenFor has elapsed
// promotes itself to probation and admits the probe.
func (b *breaker) allow(now time.Time) bool {
	switch b.state.Load() {
	case stateServing, stateProbation:
		return true
	default:
		if now.UnixNano()-b.openedAt.Load() < int64(b.cfg.openFor()) {
			return false
		}
		// First caller past the window flips to probation and probes;
		// losers of the CAS re-read and are admitted as probes too.
		b.state.CompareAndSwap(stateQuarantined, stateProbation)
		return b.state.Load() != stateQuarantined
	}
}

// onFailure records a device-level failure and opens (or re-opens) the
// breaker when the ladder says so.
func (b *breaker) onFailure(now time.Time) {
	b.probeOKs.Store(0)
	switch b.state.Load() {
	case stateProbation:
		// A failed probe goes straight back to quarantine.
		b.openedAt.Store(now.UnixNano())
		b.state.Store(stateQuarantined)
		b.openCount.Add(1)
		b.fails.Store(0)
	case stateServing:
		if b.fails.Add(1) >= b.cfg.threshold() {
			b.openedAt.Store(now.UnixNano())
			b.state.Store(stateQuarantined)
			b.openCount.Add(1)
			b.fails.Store(0)
		}
	}
}

// onSuccess records a cleanly served device request; enough of them in
// probation recover the shard.
func (b *breaker) onSuccess() {
	b.fails.Store(0)
	if b.state.Load() == stateProbation {
		if b.probeOKs.Add(1) >= b.cfg.probation() {
			b.probeOKs.Store(0)
			b.state.Store(stateServing)
		}
	}
}

// stateName renders the rung for health replies.
func (b *breaker) stateName() string {
	switch b.state.Load() {
	case stateQuarantined:
		return "quarantined"
	case stateProbation:
		return "probation"
	}
	return "serving"
}
