package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
)

// ServeListener accepts connections and speaks the line-delimited JSON
// protocol on each: one request per line, one reply line per request,
// in order. It returns nil when the listener is closed during drain,
// the accept error otherwise.
func (s *Server) ServeListener(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn handles one client. Requests on a connection run serially;
// clients that want parallelism open more connections — each in-flight
// request costs one parked goroutine here, and real concurrency is the
// shard pool's business.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{OK: false, Code: CodeBadRequest, Shard: -1, Detail: "bad request line: " + err.Error()}
		} else {
			resp = s.Submit(req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}
