package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"rchdroid/internal/chaos"
	"rchdroid/internal/config"
	"rchdroid/internal/core"
	"rchdroid/internal/device"
	"rchdroid/internal/monkey"
	"rchdroid/internal/obs"
	"rchdroid/internal/sweep"
)

// session is one resident device. Sessions live in the shard's map and
// are touched only by the shard goroutine — per-shard single ownership
// is the concurrency model, so device worlds need no locks.
type session struct {
	name    string
	spec    string
	handler string
	world   *device.World
	// rch is the installed core (nil for the stock handler); it exposes
	// the per-activity guard whose degradations the shard mirrors into
	// fleet-level counters.
	rch *core.RCHDroid
	// guardSeen is the last guard tally folded into the counters, so
	// each drive contributes only its delta.
	guardSeen guardCounts
}

// guardCounts is a point-in-time read of a session guard's degradation
// tallies.
type guardCounts struct {
	quarantines, recoveries, breakerOpens int
}

// pending is one admitted request waiting in a shard queue.
type pending struct {
	req      Request
	admitted time.Time
	// batchIdx maps the sub-batch's steps back to their positions in the
	// client's OpBatch request (nil outside the batch path).
	batchIdx []int
	// reply is buffered (1) so the shard never blocks on a slow reader.
	reply chan Response
}

// shard owns a slice of the fleet: its device sessions, its bounded
// queue, its breaker, and its private metrics registry. One goroutine
// per shard runs the loop; everything the admission path reads
// (breaker state, queue capacity) is atomic or channel-based.
type shard struct {
	idx    int
	srv    *Server
	queue  chan *pending
	brk    breaker
	reg    *obs.Registry
	sh     *obs.Shard
	seed   *sweep.SeedObs
	canary sweep.ObsRunner
	// devices mirrors len(sessions) for off-goroutine health reads.
	devices atomic.Int64

	// Owned by the shard goroutine.
	sessions map[string]*session
}

func newShard(idx int, srv *Server) *shard {
	reg := obs.NewRegistry()
	sh := reg.Shard()
	s := &shard{
		idx:      idx,
		srv:      srv,
		queue:    make(chan *pending, srv.cfg.queueDepth()),
		brk:      breaker{cfg: srv.cfg.Breaker},
		reg:      reg,
		sh:       sh,
		seed:     sweep.NewSeedObs(sh),
		canary:   sweep.OracleRunnerForked(srv.forker),
		sessions: make(map[string]*session),
	}
	// Define the wall-domain serve counters up front so an idle shard
	// still dumps them at zero — absence and "nothing happened" must
	// render differently.
	for _, name := range []string{
		"serve_requests_total", "serve_shed_overload_total",
		"serve_shed_quarantined_total", "serve_shed_draining_total",
		"serve_shed_deadline_total", "serve_device_panics_total",
		"serve_device_respawns_total", "serve_boot_failures_total",
		"serve_breaker_opens_total", "serve_deadline_overruns_total",
		"serve_batches_total", "serve_batch_steps_total",
		"serve_guard_quarantines_total", "serve_guard_recoveries_total",
		"serve_guard_breaker_opens_total",
	} {
		s.counter(name)
	}
	return s
}

// counter returns the shard's wall-domain serve counter. Help strings
// key off the name suffix so call sites stay one-liners.
func (s *shard) counter(name string) *obs.Counter {
	return s.sh.Counter(name, "serve: "+name, obs.Wall)
}

// loop is the shard goroutine: it drains the queue until the server
// closes it (drain), then exits. Every request runs contained.
func (s *shard) loop() {
	defer s.srv.wg.Done()
	for p := range s.queue {
		s.counter("serve_requests_total").Inc()
		if d := s.srv.cfg.RequestDeadline; d > 0 && time.Since(p.admitted) > d {
			// The wall deadline expired while the request sat in the
			// queue: shed it now rather than serve a reply nobody is
			// waiting for. This is the wall-clock complement of the
			// guard's sim-clock watchdog.
			s.counter("serve_shed_deadline_total").Inc()
			p.reply <- Response{ID: p.req.ID, OK: false, Code: CodeDeadline, Shard: s.idx,
				Detail: fmt.Sprintf("queued past the %v request deadline", d)}
			continue
		}
		t0 := time.Now()
		if p.req.Op == OpBatch {
			p.reply <- s.dispatchBatch(p)
		} else {
			p.reply <- s.dispatchContained(p.req)
		}
		if d := s.srv.cfg.RequestDeadline; d > 0 && time.Since(t0) > d {
			// A goroutine cannot be preempted mid-run; overruns are
			// counted so operators see deadline pressure even when
			// nothing was shed.
			s.counter("serve_deadline_overruns_total").Inc()
		}
	}
}

// dispatchContained runs one request with panic containment — the
// seed-attributed recover pattern from the sweep engine, extended with
// teardown: a panicking device is removed (optionally respawned), the
// failure feeds the breaker, and the shard keeps serving.
func (s *shard) dispatchContained(req Request) (resp Response) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.counter("serve_device_panics_total").Inc()
		s.deviceFailure()
		detail := fmt.Sprintf("panic: %v", r)
		if req.Op == OpCanary {
			// Mirror what the sweep engine records for a panicking seed,
			// so the canonical counters stay comparable.
			res := sweep.SeedResult{Seed: req.Seed, Done: true, Panicked: true}
			res.OK = false
			res.Failures = []string{detail}
			s.seed.Record(&res)
		}
		if sess := s.sessions[req.Device]; sess != nil {
			delete(s.sessions, req.Device)
			s.devices.Store(int64(len(s.sessions)))
			if s.srv.cfg.RespawnPanicked {
				if w, rch, ok := s.bootWorld(sess.spec, sess.handler, req.Seed); ok {
					s.sessions[sess.name] = &session{name: sess.name, spec: sess.spec, handler: sess.handler, world: w, rch: rch}
					s.devices.Store(int64(len(s.sessions)))
					s.counter("serve_device_respawns_total").Inc()
					detail += " (device torn down and respawned)"
				} else {
					detail += " (device torn down; respawn failed)"
				}
			} else {
				detail += " (device torn down)"
			}
		}
		resp = Response{ID: req.ID, OK: false, Code: CodeDevicePanic, Shard: s.idx, Detail: detail}
	}()
	return s.dispatch(req)
}

// dispatchBatch runs one sub-batch of drive steps on this shard, each
// step individually panic-contained — one detonating device must not
// take the rest of the burst with it. Results carry the client-side
// step indices so the server can merge sub-batches from several shards
// back into request order.
func (s *shard) dispatchBatch(p *pending) Response {
	s.counter("serve_batches_total").Inc()
	results := make([]BatchResult, 0, len(p.req.Batch))
	for j, st := range p.req.Batch {
		s.counter("serve_batch_steps_total").Inc()
		r := s.dispatchContained(Request{
			ID: p.req.ID, Op: OpDrive,
			Device: st.Device, Kind: st.Kind,
			Seed: st.Seed, Events: st.Events, Millis: st.Millis,
		})
		results = append(results, BatchResult{
			Index: p.batchIdx[j], OK: r.OK, Code: r.Code, Detail: r.Detail, Shard: s.idx,
		})
	}
	return Response{ID: p.req.ID, OK: true, Shard: s.idx, Results: results}
}

// dispatch routes one admitted request.
func (s *shard) dispatch(req Request) Response {
	switch req.Op {
	case OpBoot:
		return s.boot(req)
	case OpDrive:
		return s.drive(req)
	case OpCanary:
		return s.runCanary(req)
	}
	return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: s.idx,
		Detail: fmt.Sprintf("unknown op %q", req.Op)}
}

// boot admits a new resident device, forking from the template cache
// (which itself falls back to fresh builds for unforkable specs) with
// bounded retry + wall backoff around the settle check.
func (s *shard) boot(req Request) Response {
	if req.Device == "" {
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: s.idx, Detail: "boot needs a device name"}
	}
	if max := s.srv.cfg.maxDevices(); len(s.sessions) >= max {
		s.counter("serve_shed_overload_total").Inc()
		return Response{ID: req.ID, OK: false, Code: CodeOverloaded, Shard: s.idx,
			Detail: fmt.Sprintf("shard at its %d-device limit", max)}
	}
	if _, err := specFor(req.Spec); err != nil {
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: s.idx, Detail: err.Error()}
	}
	if _, _, err := armFor(req.Handler); err != nil {
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: s.idx, Detail: err.Error()}
	}
	w, rch, ok := s.bootWorld(req.Spec, req.Handler, req.Seed)
	if !ok {
		s.deviceFailure()
		return Response{ID: req.ID, OK: false, Code: CodeBootFailed, Shard: s.idx,
			Detail: fmt.Sprintf("world failed to settle after %d attempts", s.srv.cfg.bootRetries())}
	}
	s.sessions[req.Device] = &session{name: req.Device, spec: req.Spec, handler: req.Handler, world: w, rch: rch}
	s.devices.Store(int64(len(s.sessions)))
	s.sh.Gauge("serve_devices_high", "serve: high-water resident devices per shard", obs.Wall).Set(int64(len(s.sessions)))
	s.brk.onSuccess()
	return Response{ID: req.ID, OK: true, Shard: s.idx, Token: w.Token,
		Detail: fmt.Sprintf("device %q resident (spec=%s handler=%s)", req.Device, orDefault(req.Spec, SpecOracle), orDefault(req.Handler, HandlerRCH))}
}

// bootWorld builds one settled world with bounded retry + backoff.
// Returns ok=false after the attempts are exhausted; each failed
// attempt is counted and backed off from in wall time.
func (s *shard) bootWorld(specName, handler string, seed uint64) (*device.World, *core.RCHDroid, bool) {
	spec, err := specFor(specName)
	if err != nil {
		return nil, nil, false
	}
	arm, inst, err := armFor(handler)
	if err != nil {
		return nil, nil, false
	}
	key := "serve:" + orDefault(specName, SpecOracle)
	backoff := s.srv.cfg.bootBackoff()
	for attempt := 0; attempt < s.srv.cfg.bootRetries(); attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		w := s.srv.forker.Fork(key, spec, seed, arm)
		if w != nil && !w.Proc.Crashed() && w.Proc.Thread().ForegroundActivity() != nil {
			return w, inst.rch, true
		}
		s.counter("serve_boot_failures_total").Inc()
	}
	return nil, nil, false
}

// drive runs one burst on a resident device.
func (s *shard) drive(req Request) Response {
	if req.Kind == KindSleep {
		// Diagnostic stall: wall time only, no device involved.
		time.Sleep(time.Duration(req.Millis) * time.Millisecond)
		return Response{ID: req.ID, OK: true, Shard: s.idx, Detail: fmt.Sprintf("slept %dms", req.Millis)}
	}
	sess := s.sessions[req.Device]
	if sess == nil {
		return Response{ID: req.ID, OK: false, Code: CodeUnknownDevice, Shard: s.idx,
			Detail: fmt.Sprintf("no device %q on this shard", req.Device)}
	}
	w := sess.world
	detail := ""
	switch req.Kind {
	case KindRotate:
		w.Sys.PushConfiguration(w.Sys.GlobalConfig().Rotated())
		w.Sched.Advance(2 * time.Second)
		detail = "rotated"
	case KindNight:
		w.Sys.PushConfiguration(w.Sys.GlobalConfig().WithUIMode(config.UIModeNight))
		w.Sched.Advance(2 * time.Second)
		detail = "ui-mode night"
	case KindDay:
		w.Sys.PushConfiguration(w.Sys.GlobalConfig().WithUIMode(config.UIModeDay))
		w.Sched.Advance(2 * time.Second)
		detail = "ui-mode day"
	case KindSwitch:
		// The app-switch cycle: the user leaves (foreground activity
		// pauses and stops, releasing its shadow under RCHDroid) and
		// comes back (the stopped activity resumes).
		if fg := w.Proc.Thread().ForegroundActivity(); fg != nil {
			tok := fg.Token()
			w.Proc.Thread().ScheduleMoveToBackground(tok)
			w.Sched.Advance(1 * time.Second)
			w.Proc.Thread().ScheduleMoveToForeground(tok)
		}
		w.Sched.Advance(1 * time.Second)
		detail = "app switch (background/foreground cycle)"
	case KindTrim:
		w.Proc.TrimMemory()
		w.Sched.Advance(1 * time.Second)
		detail = "memory trim"
	case KindMonkey:
		out := monkey.Run(w.Sched, w.Sys, w.Proc, monkey.Options{Events: req.Events, Seed: req.Seed})
		detail = "monkey " + out.String()
	case KindChaos:
		plan := chaos.NewPlan(req.Seed, chaos.Light())
		plan.BindClock(w.Sched)
		plan.Install(w.Sys, w.Proc)
		for i := 0; i < 3 && !w.Proc.Crashed(); i++ {
			w.Sys.PushConfiguration(w.Sys.GlobalConfig().Rotated())
			w.Sched.Advance(2 * time.Second)
		}
		detail = fmt.Sprintf("chaos storm seed=%d injections=%d", req.Seed, len(plan.Injections()))
	default:
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: s.idx,
			Detail: fmt.Sprintf("unknown drive kind %q", req.Kind)}
	}
	if w.Proc.Crashed() {
		// A sim-level crash is a finding about the app, not a serve
		// fault: the request itself succeeded and the breaker is not
		// touched. The session stays inspectable.
		detail += " (app process crashed in sim)"
	}
	s.noteGuard(sess)
	s.brk.onSuccess()
	return Response{ID: req.ID, OK: true, Shard: s.idx, Detail: detail}
}

// noteGuard folds the session guard's degradation tallies into the
// fleet counters by delta. The counters are wall-domain on purpose:
// which drives a device received is request-stream state, and the
// canonical (sim-domain) dump must keep carrying only what canary
// seeds record.
func (s *shard) noteGuard(sess *session) {
	if sess.rch == nil || sess.rch.Guard == nil {
		return
	}
	g := sess.rch.Guard
	now := guardCounts{
		quarantines:  g.Quarantines(),
		recoveries:   g.Recoveries(),
		breakerOpens: g.BreakerOpens(),
	}
	if d := now.quarantines - sess.guardSeen.quarantines; d > 0 {
		s.counter("serve_guard_quarantines_total").Add(int64(d))
	}
	if d := now.recoveries - sess.guardSeen.recoveries; d > 0 {
		s.counter("serve_guard_recoveries_total").Add(int64(d))
	}
	if d := now.breakerOpens - sess.guardSeen.breakerOpens; d > 0 {
		s.counter("serve_guard_breaker_opens_total").Add(int64(d))
	}
	sess.guardSeen = now
}

// runCanary folds one differential-oracle seed through the exact
// rchsweep runner and engine-metric recorder, which is what makes the
// fleet's canonical dump byte-identical to an rchsweep dump over the
// same seeds.
func (s *shard) runCanary(req Request) Response {
	res := sweep.SeedResult{Seed: req.Seed, Done: true}
	t0 := time.Now()
	res.Outcome = s.canary(req.Seed, s.sh)
	res.Wall = time.Since(t0)
	s.seed.Record(&res)
	s.brk.onSuccess()
	return Response{ID: req.ID, OK: res.OK, Shard: s.idx, Detail: res.Detail, Failures: res.Failures}
}

// deviceFailure feeds one device-level failure (panic or failed boot)
// to the breaker, counting the open transition when it happens.
func (s *shard) deviceFailure() {
	before := s.brk.openCount.Load()
	s.brk.onFailure(time.Now())
	if s.brk.openCount.Load() > before {
		s.counter("serve_breaker_opens_total").Inc()
	}
}

// health is read off the shard by the server (not through the queue, so
// it works while the queue is full). sessions is owned by the shard
// goroutine; the device count is mirrored into an atomic for this read.
func (s *shard) health() ShardHealth {
	return ShardHealth{
		Shard:    s.idx,
		State:    s.brk.stateName(),
		Devices:  int(s.devices.Load()),
		QueueLen: len(s.queue),
	}
}

// orDefault returns v, or def when v is empty.
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
