package serve

import (
	"fmt"

	"rchdroid/internal/app"
	"rchdroid/internal/bundle"
	"rchdroid/internal/config"
	"rchdroid/internal/core"
	"rchdroid/internal/device"
	"rchdroid/internal/guard"
	"rchdroid/internal/oracle"
	"rchdroid/internal/resources"
	"rchdroid/internal/view"
)

// Device spec names accepted on the wire.
const (
	// SpecOracle is the full probe app (default).
	SpecOracle = "oracle"
	// SpecPanicRelaunch is the chaos-storm spec: it boots and settles
	// cleanly, then panics (a real Go panic, not a simulated crash) the
	// first time it is re-created with saved state — which is exactly
	// what a stock-handled rotation does. It exists to prove shard
	// containment: one of these must never take its shard down.
	SpecPanicRelaunch = "panic-on-relaunch"
)

// Handler names accepted on the wire.
const (
	HandlerRCH     = "rch"
	HandlerGuarded = "guarded"
	HandlerStock   = "stock"
)

// specFor resolves a wire spec name. The table is built per call — the
// package keeps no package-level state (forksafety).
func specFor(name string) (device.Spec, error) {
	switch name {
	case "", SpecOracle:
		return device.Spec{App: func() *app.App { return oracle.OracleApp(4) }}, nil
	case SpecPanicRelaunch:
		return device.Spec{App: panicRelaunchApp}, nil
	}
	return device.Spec{}, fmt.Errorf("unknown device spec %q (want %s or %s)", name, SpecOracle, SpecPanicRelaunch)
}

// installed captures the core an ArmFunc wired onto the most recently
// armed world, so the shard can keep the handle (and its guard) beside
// the resident session.
type installed struct {
	rch *core.RCHDroid
}

// armFor resolves a wire handler name to the post-settle arming point.
// Resident devices arm with a nil obs shard on purpose: their metrics
// would be request-stream-derived, and the canonical (sim-domain) dump
// must carry only what canary seeds record — that is what keeps it
// byte-identical to an rchsweep dump. Fleet-level guard visibility
// comes from the returned holder instead: the shard folds guard
// degradation deltas into wall-domain counters after each drive.
func armFor(handler string) (device.ArmFunc, *installed, error) {
	inst := &installed{}
	switch handler {
	case "", HandlerRCH:
		return func(w *device.World) {
			inst.rch = core.Install(w.Sys, w.Proc, core.DefaultOptions())
		}, inst, nil
	case HandlerGuarded:
		return func(w *device.World) {
			opts := core.DefaultOptions()
			cfg := guard.DefaultConfig()
			opts.Guard = &cfg
			inst.rch = core.Install(w.Sys, w.Proc, opts)
		}, inst, nil
	case HandlerStock:
		// Stock Android 10: the default destroy/recreate path, nothing
		// armed.
		return nil, inst, nil
	}
	return nil, nil, fmt.Errorf("unknown handler %q (want %s, %s or %s)", handler, HandlerRCH, HandlerGuarded, HandlerStock)
}

// panicRelaunchApp builds the deliberately faulty app: a minimal layout
// plus an OnCreate that panics when handed saved state. The cold launch
// passes nil, so boot settles clean; the first stock-routed relaunch
// (rotation under HandlerStock) re-creates with a non-nil bundle and
// blows up with a plain Go panic that unwinds through the scheduler into
// the shard's containment recover.
func panicRelaunchApp() *app.App {
	res := resources.NewTable()
	layout := func() *view.Spec {
		return view.Linear(1, view.Edit(11, ""))
	}
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationLandscape}, layout())
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationPortrait}, layout())

	cls := &app.ActivityClass{Name: "PanicOnRelaunch"}
	cls.Callbacks.OnCreate = func(a *app.Activity, saved *bundle.Bundle) {
		if saved != nil {
			panic("panic-on-relaunch: OnCreate with saved state")
		}
		a.SetContentView("layout/main")
	}
	return &app.App{Name: "panicapp", Resources: res, Main: cls}
}
