package serve

import (
	"fmt"
	"testing"
	"time"
)

// fnv32a is an independent reimplementation (straight from the FNV
// constants) so the routing pin does not share code with route itself.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// TestRoutePinsShardSelection pins the device→shard mapping: the FNV-1a
// hash reduced by *unsigned* modulo. The pre-fix code computed
// int(h.Sum32()) % len(shards), which goes negative for half the hash
// space wherever int is 32 bits and panics the slice index; the pin
// includes device names whose hash has the top bit set so the signed
// variant cannot sneak back in unnoticed.
func TestRoutePinsShardSelection(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Drain(5 * time.Second)

	names := []string{"d1", "d2", "storm", "bomb-0", "h-alpha", "z"}
	// Extend with generated names until at least three have the top hash
	// bit set (int32-negative territory).
	high := 0
	for i := 0; high < 3 && i < 1024; i++ {
		n := fmt.Sprintf("gen-%d", i)
		if fnv32a(n)&0x80000000 != 0 {
			names = append(names, n)
			high++
		}
	}
	if high < 3 {
		t.Fatal("no generated names with the top hash bit set — widen the search")
	}
	for _, name := range names {
		want := int(fnv32a(name) % uint32(len(s.shards)))
		got := s.route(Request{Device: name}).idx
		if got != want {
			t.Errorf("route(%q) = shard %d, want %d (fnv32a=%#x)", name, got, want, fnv32a(name))
		}
		if got != shardIndex(name, len(s.shards)) {
			t.Errorf("route(%q) disagrees with shardIndex", name)
		}
	}
}

// TestRouteRoundRobinWrap pins the deviceless round-robin path against
// counter wrap: with the counter parked just below 2^64 the pre-fix
// int(rr.Add(1)-1) % len(shards) produced a negative index and panicked.
func TestRouteRoundRobinWrap(t *testing.T) {
	s := New(Config{Shards: 3})
	defer s.Drain(5 * time.Second)

	s.rr.Store(^uint64(0) - 4) // five Adds from wrapping
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		sh := s.route(Request{}) // panics on the pre-fix signed modulo
		if sh == nil {
			t.Fatal("route returned nil")
		}
		seen[sh.idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin across the wrap covered %d shards, want 3", len(seen))
	}
}

// TestAwaitReplyPrefersExecutedReply is the drain-abort truth pin: a
// request the shard already executed (reply buffered) must come back
// with its real reply even when the drain abort has fired — the pre-fix
// select raced the two channels and reported CodeAborted for work that
// ran, so drain accounting and client-visible truth diverged. The
// executes-then-aborts interleaving is constructed deterministically:
// the reply is confirmed buffered before awaitReply is called, and the
// iteration count makes a coin-flip select fail with certainty.
func TestAwaitReplyPrefersExecutedReply(t *testing.T) {
	s := New(Config{Shards: 1})
	sh := s.shards[0]

	// Force the aborted drain state up front; the shard queue stays open
	// so work can still be enqueued and executed.
	s.abortOnce.Do(func() { close(s.abortCh) })

	for i := 0; i < 64; i++ {
		p := &pending{
			req:      Request{ID: fmt.Sprintf("r%d", i), Op: OpDrive, Kind: KindSleep, Millis: 0},
			admitted: time.Now(),
			reply:    make(chan Response, 1),
		}
		sh.queue <- p
		// Wait until the shard has executed the request and buffered the
		// reply: from here on both channels are ready and only the fixed
		// ordering returns the truth.
		deadline := time.Now().Add(5 * time.Second)
		for len(p.reply) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("shard never executed the request")
			}
			time.Sleep(50 * time.Microsecond)
		}
		r := s.awaitReply(p, sh)
		if r.Code == CodeAborted {
			t.Fatalf("iteration %d: executed request reported aborted — client truth diverged from drain accounting", i)
		}
		if !r.OK {
			t.Fatalf("iteration %d: unexpected reply %+v", i, r)
		}
	}
	s.Drain(5 * time.Second)
}

// TestSubmitAbortStillUnblocks: the fix must not cost the other half of
// the contract — a request that truly never ran still unblocks with
// CodeAborted when the drain deadline expires.
func TestSubmitAbortStillUnblocks(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	done := make(chan Response, 2)
	go func() { done <- submit(s, Request{Op: OpDrive, Kind: KindSleep, Millis: 400}) }()
	go func() { done <- submit(s, Request{Op: OpDrive, Kind: KindSleep, Millis: 400}) }()
	// Wait until one request occupies the shard and the other is queued.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.shards[0].queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalls never queued")
		}
		time.Sleep(time.Millisecond)
	}
	err := s.Drain(20 * time.Millisecond)
	if err == nil || !ForcedAbort(err) {
		t.Fatalf("want forced abort, got %v", err)
	}
	sawAborted := false
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.Code == CodeAborted {
				sawAborted = true
			}
		case <-time.After(2 * time.Second):
			t.Fatal("caller still parked after forced abort")
		}
	}
	if !sawAborted {
		t.Fatal("queued-but-never-run request did not see CodeAborted")
	}
}
