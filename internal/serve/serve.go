package serve

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"rchdroid/internal/device"
	"rchdroid/internal/obs"
)

// Config tunes the fleet service. Zero values get serviceable defaults.
type Config struct {
	// Shards is the goroutine-pool width (≤ 0 means 4). Each shard owns
	// its devices, its queue, its breaker, and its metrics registry.
	Shards int
	// QueueDepth bounds each shard's request queue (≤ 0 means 16). A
	// full queue sheds with CodeOverloaded — admission control, never
	// unbounded growth.
	QueueDepth int
	// MaxDevices bounds resident devices per shard (≤ 0 means 64).
	MaxDevices int
	// RequestDeadline is the wall-clock budget per request (0 = none):
	// requests that overstay it in the queue are shed with CodeDeadline;
	// runs that exceed it are counted as overruns.
	RequestDeadline time.Duration
	// BootRetries bounds settle attempts per boot (≤ 0 means 3);
	// BootBackoff is the wall backoff before the first retry, doubling
	// per attempt (≤ 0 means 2ms).
	BootRetries int
	BootBackoff time.Duration
	// RespawnPanicked re-boots a device after its panic is contained.
	RespawnPanicked bool
	// Breaker tunes the per-shard circuit breaker.
	Breaker BreakerConfig
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 4
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 16
}

func (c Config) maxDevices() int {
	if c.MaxDevices > 0 {
		return c.MaxDevices
	}
	return 64
}

func (c Config) bootRetries() int {
	if c.BootRetries > 0 {
		return c.BootRetries
	}
	return 3
}

func (c Config) bootBackoff() time.Duration {
	if c.BootBackoff > 0 {
		return c.BootBackoff
	}
	return 2 * time.Millisecond
}

// ErrForcedAbort is returned by Drain when the deadline expired with
// work still in flight.
var errForcedAbort = errors.New("serve: drain deadline expired; forced abort")

// ForcedAbort reports whether a Drain error means the deadline expired
// (as opposed to a double drain).
func ForcedAbort(err error) bool { return errors.Is(err, errForcedAbort) }

// Server is the fleet: shards, their template cache, and the drain
// machinery.
type Server struct {
	cfg    Config
	shards []*shard
	forker *device.TemplateCache

	// admitMu serializes admission against the drain flip: Submit holds
	// the read side across its draining-check + enqueue, Drain takes the
	// write side to set the flag before closing the queues, so nothing
	// can send on a closed queue.
	admitMu  sync.RWMutex
	draining atomic.Bool
	// abortCh is closed on forced abort so parked Submit calls unblock
	// with CodeAborted.
	abortCh   chan struct{}
	abortOnce sync.Once
	// wg tracks shard goroutines; Drain waits on it.
	wg sync.WaitGroup
	// rr round-robins canary (and other deviceless) requests.
	rr atomic.Uint64
}

// New builds and starts the fleet.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		forker:  device.NewTemplateCache(),
		abortCh: make(chan struct{}),
	}
	for i := 0; i < cfg.shards(); i++ {
		s.shards = append(s.shards, newShard(i, s))
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	return s
}

// route picks the owning shard: the device name decides for boot/drive
// (a device always lands on the same shard), round-robin otherwise.
func (s *Server) route(req Request) *shard {
	if req.Device != "" {
		return s.shards[shardIndex(req.Device, len(s.shards))]
	}
	return s.shards[int((s.rr.Add(1)-1)%uint64(len(s.shards)))]
}

// shardIndex maps a device name to its owning shard through unsigned
// arithmetic end to end. int(h.Sum32()) % n would go negative for half
// the hash space on 32-bit ints and panic the slice index; the same
// hazard hides in the round-robin counter once it wraps, so both paths
// reduce in the unsigned domain and convert after.
func shardIndex(device string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(device))
	return int(h.Sum32() % uint32(shards))
}

// Submit runs one request through admission and waits for its reply.
// Stats and health are answered inline — they must work when every
// queue is full, that being exactly when an operator needs them.
func (s *Server) Submit(req Request) Response {
	switch req.Op {
	case OpStats:
		return s.statsResponse(req.ID)
	case OpHealth:
		return s.healthResponse(req.ID)
	case OpBatch:
		return s.submitBatch(req)
	}
	sh := s.route(req)

	s.admitMu.RLock()
	if s.draining.Load() {
		s.admitMu.RUnlock()
		sh.counter("serve_shed_draining_total").Inc()
		return Response{ID: req.ID, OK: false, Code: CodeDraining, Shard: sh.idx, Detail: "server is draining"}
	}
	if !sh.brk.allow(time.Now()) {
		s.admitMu.RUnlock()
		sh.counter("serve_shed_quarantined_total").Inc()
		return Response{ID: req.ID, OK: false, Code: CodeQuarantined, Shard: sh.idx,
			Detail: "shard quarantined by its circuit breaker"}
	}
	p := &pending{req: req, admitted: time.Now(), reply: make(chan Response, 1)}
	select {
	case sh.queue <- p:
		s.admitMu.RUnlock()
	default:
		s.admitMu.RUnlock()
		sh.counter("serve_shed_overload_total").Inc()
		return Response{ID: req.ID, OK: false, Code: CodeOverloaded, Shard: sh.idx,
			Detail: "shard queue full; request shed"}
	}

	return s.awaitReply(p, sh)
}

// awaitReply parks until the request's reply arrives or the drain abort
// fires. A ready reply always wins: when abortCh closes after the shard
// already executed the request, the buffered reply is the truth —
// reporting CodeAborted then would tell the client the request never
// ran while the shard's drain accounting says it did. The inner select
// re-checks the reply channel before conceding to the abort.
func (s *Server) awaitReply(p *pending, sh *shard) Response {
	select {
	case resp := <-p.reply:
		return resp
	case <-s.abortCh:
		select {
		case resp := <-p.reply:
			return resp
		default:
			return Response{ID: p.req.ID, OK: false, Code: CodeAborted, Shard: sh.idx,
				Detail: "drain deadline expired before the request ran"}
		}
	}
}

// submitBatch fans one OpBatch request across the owning shards — the
// batched cross-shard dispatch path. Steps are grouped by the shard
// their device name routes to, each group rides the shard queue as one
// pending (the shards execute their sub-batches in parallel), and the
// per-step results merge back into a single reply in step order. Every
// step keeps the individual admission contract: a quarantined or full
// shard refuses its steps with the explicit code while the other
// shards' steps still run.
func (s *Server) submitBatch(req Request) Response {
	if len(req.Batch) == 0 {
		return Response{ID: req.ID, OK: false, Code: CodeBadRequest, Shard: -1,
			Detail: "batch needs at least one step"}
	}
	type group struct {
		sh    *shard
		steps []BatchStep
		idx   []int
	}
	var groups []*group
	byShard := make(map[*shard]*group)
	for i, st := range req.Batch {
		sh := s.route(Request{Device: st.Device})
		g := byShard[sh]
		if g == nil {
			g = &group{sh: sh}
			byShard[sh] = g
			groups = append(groups, g)
		}
		g.steps = append(g.steps, st)
		g.idx = append(g.idx, i)
	}

	results := make([]BatchResult, len(req.Batch))
	s.admitMu.RLock()
	if s.draining.Load() {
		s.admitMu.RUnlock()
		for _, g := range groups {
			g.sh.counter("serve_shed_draining_total").Add(int64(len(g.steps)))
		}
		return Response{ID: req.ID, OK: false, Code: CodeDraining, Shard: -1, Detail: "server is draining"}
	}
	var enqueued []*pending
	var waiting []*group
	for _, g := range groups {
		if !g.sh.brk.allow(time.Now()) {
			g.sh.counter("serve_shed_quarantined_total").Add(int64(len(g.steps)))
			for _, i := range g.idx {
				results[i] = BatchResult{Index: i, OK: false, Code: CodeQuarantined, Shard: g.sh.idx,
					Detail: "shard quarantined by its circuit breaker"}
			}
			continue
		}
		p := &pending{
			req:      Request{ID: req.ID, Op: OpBatch, Batch: g.steps},
			batchIdx: g.idx,
			admitted: time.Now(),
			reply:    make(chan Response, 1),
		}
		select {
		case g.sh.queue <- p:
			enqueued = append(enqueued, p)
			waiting = append(waiting, g)
		default:
			g.sh.counter("serve_shed_overload_total").Add(int64(len(g.steps)))
			for _, i := range g.idx {
				results[i] = BatchResult{Index: i, OK: false, Code: CodeOverloaded, Shard: g.sh.idx,
					Detail: "shard queue full; request shed"}
			}
		}
	}
	s.admitMu.RUnlock()

	for k, p := range enqueued {
		g := waiting[k]
		resp := s.awaitReply(p, g.sh)
		if len(resp.Results) > 0 {
			for _, r := range resp.Results {
				results[r.Index] = r
			}
			continue
		}
		// The whole sub-batch came back as one refusal (queue-deadline
		// shed or drain abort): every step inherits it.
		for _, i := range g.idx {
			results[i] = BatchResult{Index: i, OK: false, Code: resp.Code, Shard: resp.Shard, Detail: resp.Detail}
		}
	}

	resp := Response{ID: req.ID, OK: true, Shard: -1, Results: results}
	for _, r := range results {
		if !r.OK {
			resp.OK = false
			resp.Code = r.Code
			resp.Detail = r.Detail
			break
		}
	}
	return resp
}

// Drain stops admission, lets shards finish their queued work, and
// waits up to timeout. A clean drain returns nil; a deadline expiry
// closes the abort channel (unblocking parked callers) and returns
// errForcedAbort. Safe to call once; later calls just wait again.
func (s *Server) Drain(timeout time.Duration) error {
	s.admitMu.Lock()
	first := !s.draining.Swap(true)
	if first {
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// A stoppable timer, not time.After: every clean drain would leak
	// the After timer until it fired on its own.
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		s.abortOnce.Do(func() { close(s.abortCh) })
		return errForcedAbort
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// MergedSnapshot folds every shard's registry into one aggregate under
// obs.MergeSnapshots' commutative semantics: the canonical (sim-domain)
// rendering is byte-identical regardless of shard count or how devices
// and canary seeds were partitioned.
func (s *Server) MergedSnapshot() (*obs.Snapshot, error) {
	snaps := make([]*obs.Snapshot, len(s.shards))
	for i, sh := range s.shards {
		snaps[i] = sh.reg.Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// statsResponse renders the merged snapshot.
func (s *Server) statsResponse(id string) Response {
	snap, err := s.MergedSnapshot()
	if err != nil {
		return Response{ID: id, OK: false, Code: CodeBadRequest, Shard: -1, Detail: err.Error()}
	}
	return Response{ID: id, OK: true, Shard: -1,
		Metrics:   snap.MarshalAll(),
		Canonical: snap.MarshalCanonical(),
	}
}

// healthResponse renders readiness plus per-shard state. Ready means
// not draining and at least one shard serving.
func (s *Server) healthResponse(id string) Response {
	resp := Response{ID: id, Shard: -1}
	serving := 0
	for _, sh := range s.shards {
		h := sh.health()
		if h.State == "serving" {
			serving++
		}
		resp.Shards = append(resp.Shards, h)
	}
	resp.OK = !s.draining.Load() && serving > 0
	if !resp.OK {
		resp.Code = CodeDraining
		if !s.draining.Load() {
			resp.Code = CodeQuarantined
		}
		resp.Detail = "not ready"
	}
	return resp
}
