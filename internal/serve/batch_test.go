package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// bootOnDistinctShards boots devices until at least want shards host
// one, returning one device name per covered shard.
func bootOnDistinctShards(t *testing.T, s *Server, want int) map[int]string {
	t.Helper()
	byShard := make(map[int]string)
	for i := 0; len(byShard) < want && i < 64; i++ {
		name := fmt.Sprintf("bd-%d", i)
		r := submit(s, Request{Op: OpBoot, Device: name, Seed: uint64(i + 1)})
		if !r.OK {
			t.Fatalf("boot %s: %+v", name, r)
		}
		if _, ok := byShard[r.Shard]; !ok {
			byShard[r.Shard] = name
		}
	}
	if len(byShard) < want {
		t.Fatalf("devices never covered %d shards: %v", want, byShard)
	}
	return byShard
}

// TestBatchCrossShard: one OpBatch whose steps land on different shards
// comes back as a single reply with per-step results in request order,
// each attributed to the shard its device name routes to.
func TestBatchCrossShard(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Drain(5 * time.Second)

	byShard := bootOnDistinctShards(t, s, 2)
	var devices []string
	for _, name := range byShard {
		devices = append(devices, name)
	}
	var steps []BatchStep
	for _, name := range devices {
		steps = append(steps,
			BatchStep{Device: name, Kind: KindRotate},
			BatchStep{Device: name, Kind: KindSwitch},
			BatchStep{Device: name, Kind: KindTrim},
			BatchStep{Device: name, Kind: KindMonkey, Events: 10, Seed: 5},
		)
	}
	r := submit(s, Request{ID: "b1", Op: OpBatch, Batch: steps})
	if !r.OK {
		t.Fatalf("batch failed: %+v", r)
	}
	if r.ID != "b1" {
		t.Fatalf("batch reply dropped the pipeline ID: %+v", r)
	}
	if len(r.Results) != len(steps) {
		t.Fatalf("batch returned %d results for %d steps", len(r.Results), len(steps))
	}
	for i, res := range r.Results {
		if res.Index != i {
			t.Fatalf("results out of request order at %d: %+v", i, r.Results)
		}
		if !res.OK {
			t.Fatalf("step %d failed: %+v", i, res)
		}
		want := s.route(Request{Device: steps[i].Device}).idx
		if res.Shard != want {
			t.Fatalf("step %d ran on shard %d, routes to %d", i, res.Shard, want)
		}
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_batch_steps_total"); got != int64(len(steps)) {
		t.Fatalf("serve_batch_steps_total = %d, want %d", got, len(steps))
	}
	// One sub-batch per covered shard.
	if got := metricValue(snap, "serve_batches_total"); got != int64(len(byShard)) {
		t.Fatalf("serve_batches_total = %d, want %d", got, len(byShard))
	}
}

// TestBatchPartialFailure: a step on an unknown device fails with its
// own code while the rest of the burst still runs; the reply-level OK
// is the conjunction and Code surfaces the first failure.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Drain(5 * time.Second)

	if r := submit(s, Request{Op: OpBoot, Device: "real", Seed: 3}); !r.OK {
		t.Fatalf("boot: %+v", r)
	}
	r := submit(s, Request{Op: OpBatch, Batch: []BatchStep{
		{Device: "real", Kind: KindRotate},
		{Device: "ghost", Kind: KindRotate},
		{Device: "real", Kind: KindNight},
	}})
	if r.OK {
		t.Fatalf("batch with a failing step reported OK: %+v", r)
	}
	if r.Code != CodeUnknownDevice {
		t.Fatalf("reply code = %q, want first failure %q", r.Code, CodeUnknownDevice)
	}
	if len(r.Results) != 3 {
		t.Fatalf("want 3 results: %+v", r.Results)
	}
	if !r.Results[0].OK || !r.Results[2].OK {
		t.Fatalf("healthy steps did not run: %+v", r.Results)
	}
	if r.Results[1].OK || r.Results[1].Code != CodeUnknownDevice {
		t.Fatalf("ghost step: %+v", r.Results[1])
	}
}

// TestBatchEmptyAndBadStep: an empty batch is a bad request; an unknown
// kind fails its step with CodeBadRequest.
func TestBatchEmptyAndBadStep(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Drain(5 * time.Second)

	if r := submit(s, Request{Op: OpBatch}); r.OK || r.Code != CodeBadRequest {
		t.Fatalf("empty batch: %+v", r)
	}
	if r := submit(s, Request{Op: OpBoot, Device: "d", Seed: 1}); !r.OK {
		t.Fatalf("boot: %+v", r)
	}
	if r := submit(s, Request{Op: OpBatch, Batch: []BatchStep{{Device: "d", Kind: "warp"}}}); r.OK ||
		r.Results[0].Code != CodeBadRequest {
		t.Fatalf("unknown kind: %+v", r)
	}
}

// TestBatchOverloadShed: a batch aimed at a jammed shard sheds every
// step with the explicit overload code instead of blocking past the
// queue bound.
func TestBatchOverloadShed(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1})
	defer s.Drain(10 * time.Second)

	// Jam the single shard: one sleep running, one queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			submit(s, Request{Op: OpDrive, Kind: KindSleep, Millis: 120})
		}()
	}
	// Wait until the queue is actually full so the batch's non-blocking
	// enqueue must refuse.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.shards[0].queue) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	r := submit(s, Request{Op: OpBatch, Batch: []BatchStep{
		{Device: "any", Kind: KindRotate},
		{Device: "other", Kind: KindTrim},
	}})
	wg.Wait()
	if r.OK || r.Code != CodeOverloaded {
		t.Fatalf("batch against a jammed shard: %+v", r)
	}
	for _, res := range r.Results {
		if res.OK || res.Code != CodeOverloaded {
			t.Fatalf("step not shed with overloaded: %+v", res)
		}
	}
	snap, err := s.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(snap, "serve_shed_overload_total"); got != 2 {
		t.Fatalf("serve_shed_overload_total = %d, want 2 (one per shed step)", got)
	}
}

// TestBatchPanicContainmentPerStep: a detonating step inside a batch is
// contained like an individual request — the following steps in the
// same sub-batch still run.
func TestBatchPanicContainmentPerStep(t *testing.T) {
	s := New(Config{Shards: 1, Breaker: BreakerConfig{Threshold: 100}})
	defer s.Drain(5 * time.Second)

	if r := submit(s, Request{Op: OpBoot, Device: "bomb", Spec: SpecPanicRelaunch, Handler: HandlerStock, Seed: 2}); !r.OK {
		t.Fatalf("boot bomb: %+v", r)
	}
	if r := submit(s, Request{Op: OpBoot, Device: "ok", Seed: 3}); !r.OK {
		t.Fatalf("boot ok: %+v", r)
	}
	r := submit(s, Request{Op: OpBatch, Batch: []BatchStep{
		{Device: "bomb", Kind: KindRotate}, // detonates
		{Device: "ok", Kind: KindRotate},   // must still run
	}})
	if r.OK {
		t.Fatalf("batch with a detonating step reported OK: %+v", r)
	}
	if r.Results[0].Code != CodeDevicePanic {
		t.Fatalf("bomb step: %+v", r.Results[0])
	}
	if !r.Results[1].OK {
		t.Fatalf("step after the contained panic did not run: %+v", r.Results[1])
	}
}

// TestBatchDraining: a draining server refuses the whole batch with the
// draining code.
func TestBatchDraining(t *testing.T) {
	s := New(Config{Shards: 2})
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := submit(s, Request{Op: OpBatch, Batch: []BatchStep{{Device: "d", Kind: KindRotate}}})
	if r.OK || r.Code != CodeDraining {
		t.Fatalf("draining batch: %+v", r)
	}
}

// TestBatchRaceHammer floods a multi-shard server with concurrent
// cross-shard batches while boots and individual drives interleave —
// the -race pass over the batched dispatch path.
func TestBatchRaceHammer(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 32})
	defer s.Drain(10 * time.Second)

	devices := make([]string, 6)
	for i := range devices {
		devices[i] = fmt.Sprintf("h-%d", i)
		if r := submit(s, Request{Op: OpBoot, Device: devices[i], Seed: uint64(i + 1)}); !r.OK {
			t.Fatalf("boot %s: %+v", devices[i], r)
		}
	}
	clients := 8
	rounds := 10
	if testing.Short() {
		clients, rounds = 4, 5
	}
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				var steps []BatchStep
				for _, d := range devices {
					kind := []string{KindRotate, KindSwitch, KindTrim, KindNight, KindDay}[(c+round)%5]
					steps = append(steps, BatchStep{Device: d, Kind: kind})
				}
				r := submit(s, Request{Op: OpBatch, Batch: steps})
				for _, res := range r.Results {
					if !res.OK && res.Code != CodeOverloaded {
						errs <- fmt.Sprintf("client %d round %d: %+v", c, round, res)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
