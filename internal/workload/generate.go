package workload

import (
	"fmt"
	"sort"

	"rchdroid/internal/sim"
)

// GenSpec parameterises the diurnal generator. The zero value of any
// field takes the documented default.
type GenSpec struct {
	// Seed drives every roll. Same spec → byte-identical log.
	Seed uint64
	// Devices is the fleet size (default 8).
	Devices int
	// SpanMS is the sim span (default 60000 — one compressed "day").
	SpanMS int64
	// EventsPerDevice is the target mean drive-event count per device
	// across the span (default 40). The realised count jitters around it.
	EventsPerDevice int
	// GuardedPercent of devices boot with the guarded handler; the rest
	// split 1-in-8 stock, remainder rch (default 25).
	GuardedPercent int
}

func (g GenSpec) withDefaults() GenSpec {
	if g.Devices <= 0 {
		g.Devices = 8
	}
	if g.SpanMS <= 0 {
		g.SpanMS = 60_000
	}
	if g.EventsPerDevice <= 0 {
		g.EventsPerDevice = 40
	}
	if g.GuardedPercent <= 0 {
		g.GuardedPercent = 25
	}
	return g
}

// diurnalWeights is the relative traffic intensity across 24 equal
// slices of the span — the classic double-peak day: near-idle small
// hours, a morning commute ramp, a sustained work plateau, and the
// evening peak. Integer weights keep the generator free of float math,
// so logs are byte-reproducible on any platform.
var diurnalWeights = [24]int{
	2, 1, 1, 1, 1, 2, // 00–06: night trough
	4, 6, 8, 8, 7, 6, // 06–12: morning ramp and peak
	7, 8, 9, 8, 7, 9, // 12–18: afternoon plateau
	10, 9, 7, 5, 4, 3, // 18–24: evening peak, wind-down
}

// weightAt maps a sim timestamp to its diurnal slice's weight.
func weightAt(at, span int64) int {
	slice := int(at * 24 / span)
	if slice > 23 {
		slice = 23
	}
	return diurnalWeights[slice]
}

// Generate builds a diurnal workload log from spec. Everything derives
// from integer arithmetic over the seeded sim.RNG stream, so the same
// spec always encodes to identical bytes.
//
// Shape: each device arrives (boots) inside the first eighth of the
// span, staggered; from arrival it emits drive events whose inter-event
// gap stretches and shrinks inversely with the diurnal weight — dense
// bursts at the peaks, long idle gaps in the trough. The kind mix per
// event: app switches 28%, rotations 20%, night/day toggles 12%
// (alternating per device), seeded async monkey bursts 25%, and
// memory-pressure trims 15%.
func Generate(spec GenSpec) *Log {
	spec = spec.withDefaults()
	var sumW int64
	for _, w := range diurnalWeights {
		sumW += int64(w)
	}
	avgW := sumW / 24

	var events []Event
	for d := 0; d < spec.Devices; d++ {
		// A distinct SplitMix stream per device: the golden-ratio stride
		// is the same decorrelation NewRNG itself advances by.
		rng := sim.NewRNG(spec.Seed + uint64(d)*0x9e3779b97f4a7c15)
		name := fmt.Sprintf("w-%03d", d)

		handler := "rch"
		switch roll := rng.Intn(100); {
		case roll < spec.GuardedPercent:
			handler = "guarded"
		case roll%8 == 0:
			handler = "stock"
		}
		arrive := int64(rng.Intn(int(spec.SpanMS/8) + 1))
		events = append(events, Event{
			AtMS: arrive, Device: name, Kind: EvBoot,
			Handler: handler, Seed: rng.Uint64(),
		})

		// Mean gap at average intensity; per-event gap scales by the
		// inverse diurnal weight and jitters uniformly in [gap/2, 3gap/2).
		active := spec.SpanMS - arrive
		meanGap := active / int64(spec.EventsPerDevice)
		if meanGap < 1 {
			meanGap = 1
		}
		night := false
		for at := arrive; ; {
			gap := meanGap * avgW / int64(weightAt(at, spec.SpanMS))
			if gap < 1 {
				gap = 1
			}
			at += gap/2 + int64(rng.Intn(int(gap)+1))
			if at > spec.SpanMS {
				break
			}
			ev := Event{AtMS: at, Device: name}
			switch roll := rng.Intn(100); {
			case roll < 28:
				ev.Kind = EvSwitch
			case roll < 48:
				ev.Kind = EvRotate
			case roll < 60:
				if night {
					ev.Kind = EvDay
				} else {
					ev.Kind = EvNight
				}
				night = !night
			case roll < 85:
				ev.Kind = EvBurst
				ev.Events = 5 + rng.Intn(20)
				ev.Seed = rng.Uint64()
			default:
				ev.Kind = EvTrim
			}
			events = append(events, ev)
		}
	}

	// Merge the per-device streams into one timeline. The tie-break on
	// (device, kind) keeps the order a pure function of the event set.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.AtMS != b.AtMS {
			return a.AtMS < b.AtMS
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Kind < b.Kind
	})

	return &Log{
		Header: Header{
			Format: FormatName, Version: FormatVersion,
			Seed: spec.Seed, Devices: spec.Devices,
			SpanMS: spec.SpanMS, Events: len(events),
		},
		Events: events,
	}
}
