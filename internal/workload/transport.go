package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"rchdroid/internal/serve"
)

// LocalDialer returns a Dialer that submits straight into an in-process
// server — the same engine code path as TCP minus the socket, which is
// what the determinism tests replay against.
func LocalDialer(s *serve.Server) Dialer {
	return func() (Caller, error) {
		return localCaller{s: s}, nil
	}
}

type localCaller struct{ s *serve.Server }

func (c localCaller) Call(req serve.Request) (serve.Response, error) {
	return c.s.Submit(req), nil
}

func (c localCaller) Close() error { return nil }

// TCPDialer returns a Dialer speaking the line-delimited JSON wire
// protocol to a live rchserve at addr.
func TCPDialer(addr string) Dialer {
	return func() (Caller, error) {
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(conn)
		// Stats replies carry the full merged snapshot on one line.
		sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
		return &tcpCaller{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
	}
}

type tcpCaller struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

func (c *tcpCaller) Call(req serve.Request) (serve.Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return serve.Response{}, fmt.Errorf("send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return serve.Response{}, fmt.Errorf("recv: %w", err)
		}
		return serve.Response{}, fmt.Errorf("recv: connection closed")
	}
	var resp serve.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return serve.Response{}, fmt.Errorf("recv: %w", err)
	}
	return resp, nil
}

func (c *tcpCaller) Close() error { return c.conn.Close() }
