package workload

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"rchdroid/internal/metrics"
	"rchdroid/internal/obs"
	"rchdroid/internal/serve"
)

// Caller is one wire connection (or an in-process stand-in): it carries
// a request to the fleet and blocks for the reply. Each replay worker
// owns one Caller, so implementations need not be safe for concurrent
// Call.
type Caller interface {
	Call(serve.Request) (serve.Response, error)
	Close() error
}

// Dialer opens one Caller. Replay dials once per worker plus once for
// the final stats read.
type Dialer func() (Caller, error)

// Config parameterises a replay.
type Config struct {
	// Speed is the time-compression multiplier: an event at sim t is due
	// at wall start + t/Speed. 0 defaults to 1; the supported band is
	// 1–1000 and Speed is clamped into it.
	Speed float64
	// Window bounds in-flight work: the replay runs Window workers, each
	// with one connection and at most one outstanding request, so no
	// more than Window requests are ever in flight (default 4). Devices
	// pin to workers by name hash, which preserves per-device event
	// order — a device's boot always lands before its drives.
	Window int
	// MaxBatch caps how many due burst-class events one worker coalesces
	// into a single OpBatch round-trip (default 16).
	MaxBatch int
	// Dial opens the per-worker connections.
	Dial Dialer
	// Obs receives the replay's metrics; nil uses a private registry.
	// Sim-domain metrics are derived from the log alone, so the
	// canonical dump is byte-identical across shard counts and speeds.
	Obs *obs.Registry
}

// Report is the replay's SLO summary — the production-style answer to
// "what did this traffic cost": per-op-class wall latency percentiles,
// shed rates by machine-readable code, and the server's breaker and
// guard counters over the run.
type Report struct {
	Speed         float64 `json:"speed"`
	Window        int     `json:"window"`
	Events        int     `json:"events"`
	Devices       int     `json:"devices"`
	SpanMS        int64   `json:"span_ms"`
	WallMS        float64 `json:"wall_ms"`
	AchievedSpeed float64 `json:"achieved_speed"`
	// MaxLagMS is the worst scheduling lag: how far behind its due time
	// an event was sent, the replay's own pacing health.
	MaxLagMS float64 `json:"max_lag_ms"`

	// Boot is cold/forked boot latency; Flip is config-change latency
	// under whatever contention the trace generates (the paper's
	// transparency number, measured at the fleet edge); Batch is the
	// round-trip of a coalesced burst dispatch.
	Boot  metrics.DurationStats `json:"boot"`
	Flip  metrics.DurationStats `json:"flip"`
	Batch metrics.DurationStats `json:"batch"`

	// StepsOK counts events the fleet completed; Shed counts refused or
	// failed events by wire code (overloaded, deadline, quarantined, …).
	StepsOK  int64            `json:"steps_ok"`
	Shed     map[string]int64 `json:"shed"`
	ShedRate float64          `json:"shed_rate"`

	// Server-side degradation counters over the run, read from the
	// fleet's own merged snapshot after the last event.
	BreakerOpens      int64 `json:"breaker_opens"`
	GuardQuarantines  int64 `json:"guard_quarantines"`
	GuardRecoveries   int64 `json:"guard_recoveries"`
	GuardBreakerOpens int64 `json:"guard_breaker_opens"`
}

// burstClass reports whether kind coalesces into OpBatch. Config flips
// stay individual round-trips on purpose: flip latency is the SLO the
// replay measures, so it must be one op per measurement.
func burstClass(kind string) bool {
	return kind == EvSwitch || kind == EvTrim || kind == EvBurst
}

// driveKind maps a workload kind to its serve drive kind.
func driveKind(kind string) string {
	if kind == EvBurst {
		return serve.KindMonkey
	}
	return kind
}

// worker is one replay lane: its own connection, obs shard, and sample
// buffers.
type worker struct {
	id     int
	events []Event
	call   Caller
	sh     *obs.Shard

	boot, flip, batch []time.Duration
	stepsOK           int64
	shed              map[string]int64
	maxLag            time.Duration
	err               error
}

// Replay pushes the log through the fleet behind cfg.Dial, pacing by
// the log's sim timestamps compressed by cfg.Speed, and returns the SLO
// report. The transport decides what "the fleet" is: a TCP dialer
// replays against a live rchserve, an in-process dialer against a
// serve.Server in the same test binary — same engine either way.
func Replay(lg *Log, cfg Config) (*Report, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("workload: replay needs a dialer")
	}
	if err := lg.Validate(); err != nil {
		return nil, err
	}
	speed := cfg.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 1 {
		speed = 1
	}
	if speed > 1000 {
		speed = 1000
	}
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 16
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	recordLogMetrics(reg.Shard(), lg)

	// Partition by device hash: a stable split of a sorted log, so each
	// worker sees its devices' events in log order.
	workers := make([]*worker, window)
	for i := range workers {
		workers[i] = &worker{id: i, sh: reg.Shard(), shed: make(map[string]int64)}
	}
	for _, ev := range lg.Events {
		w := workers[deviceLane(ev.Device, window)]
		w.events = append(w.events, ev)
	}
	for _, w := range workers {
		c, err := cfg.Dial()
		if err != nil {
			for _, prev := range workers {
				if prev.call != nil {
					prev.call.Close()
				}
			}
			return nil, fmt.Errorf("workload: dial worker %d: %w", w.id, err)
		}
		w.call = c
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer w.call.Close()
			w.run(start, speed, maxBatch)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{
		Speed: speed, Window: window,
		Events: lg.Header.Events, Devices: lg.Header.Devices, SpanMS: lg.Header.SpanMS,
		WallMS: float64(wall) / float64(time.Millisecond),
		Shed:   make(map[string]int64),
	}
	if wall > 0 {
		rep.AchievedSpeed = float64(lg.Header.SpanMS) / (float64(wall) / float64(time.Millisecond))
	}
	var boot, flip, batch []time.Duration
	for _, w := range workers {
		if w.err != nil {
			return nil, w.err
		}
		boot = append(boot, w.boot...)
		flip = append(flip, w.flip...)
		batch = append(batch, w.batch...)
		rep.StepsOK += w.stepsOK
		for code, n := range w.shed {
			rep.Shed[code] += n
		}
		if lag := float64(w.maxLag) / float64(time.Millisecond); lag > rep.MaxLagMS {
			rep.MaxLagMS = lag
		}
	}
	rep.Boot = metrics.SummarizeDurations(boot)
	rep.Flip = metrics.SummarizeDurations(flip)
	rep.Batch = metrics.SummarizeDurations(batch)
	var shedTotal int64
	for _, n := range rep.Shed {
		shedTotal += n
	}
	if total := rep.StepsOK + shedTotal; total > 0 {
		rep.ShedRate = float64(shedTotal) / float64(total)
	}
	if err := fetchServerCounters(cfg.Dial, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// recordLogMetrics writes the sim-domain (canonical) metrics: pure
// functions of the log bytes, so any replay of the same log — any shard
// count, any speed — dumps identical canonical output. Every kind's
// counter is defined even when zero, so the metric set itself cannot
// vary with the log's kind mix.
func recordLogMetrics(sh *obs.Shard, lg *Log) {
	sh.Counter("replay_log_events_total", "events in the replayed log", obs.Sim).Add(int64(len(lg.Events)))
	byKind := map[string]int64{}
	for _, ev := range lg.Events {
		byKind[ev.Kind]++
	}
	for _, kind := range []string{EvBoot, EvSwitch, EvRotate, EvNight, EvDay, EvTrim, EvBurst} {
		sh.Counter("replay_log_"+kind+"_events_total", "log events of kind "+kind, obs.Sim).Add(byKind[kind])
	}
	sh.Gauge("replay_log_devices", "devices the log drives", obs.Sim).Set(int64(lg.Header.Devices))
	sh.Gauge("replay_log_span_ms", "log sim span (ms)", obs.Sim).Set(lg.Header.SpanMS)
	sh.Gauge("replay_log_version", "workload format version", obs.Sim).Set(int64(lg.Header.Version))
}

// deviceLane maps a device name to its worker, mirroring the server's
// FNV sharding so lane assignment is stable across runs.
func deviceLane(device string, lanes int) int {
	h := fnv.New32a()
	h.Write([]byte(device))
	return int(h.Sum32() % uint32(lanes))
}

// run replays one lane. Boots and config flips go as individual ops (a
// flip round-trip IS the SLO sample); consecutive due burst-class
// events coalesce into one OpBatch up to the batch cap.
func (w *worker) run(start time.Time, speed float64, maxBatch int) {
	lagGauge := w.sh.Gauge("replay_lag_ms_high", "worst event dispatch lag (ms)", obs.Wall)
	batchGauge := w.sh.Gauge("replay_batch_size_high", "largest coalesced batch", obs.Wall)
	bootHist := w.sh.Histogram("replay_boot_wall_ns", "boot round-trip wall latency", obs.Wall, obs.WallDurationBounds)
	flipHist := w.sh.Histogram("replay_flip_wall_ns", "config-flip round-trip wall latency", obs.Wall, obs.WallDurationBounds)
	batchHist := w.sh.Histogram("replay_batch_wall_ns", "batched burst round-trip wall latency", obs.Wall, obs.WallDurationBounds)
	okCounter := w.sh.Counter("replay_steps_ok_total", "events the fleet completed", obs.Wall)

	due := func(ev Event) time.Time {
		return start.Add(time.Duration(float64(ev.AtMS) / speed * float64(time.Millisecond)))
	}
	seq := 0
	for i := 0; i < len(w.events); {
		ev := w.events[i]
		if d := time.Until(due(ev)); d > 0 {
			time.Sleep(d)
		}
		if lag := time.Since(due(ev)); lag > w.maxLag {
			w.maxLag = lag
			lagGauge.Set(int64(lag / time.Millisecond))
		}
		seq++
		id := fmt.Sprintf("w%d-%d", w.id, seq)

		if !burstClass(ev.Kind) {
			req := serve.Request{ID: id, Op: serve.OpDrive, Device: ev.Device, Kind: driveKind(ev.Kind)}
			if ev.Kind == EvBoot {
				req = serve.Request{ID: id, Op: serve.OpBoot, Device: ev.Device, Handler: ev.Handler, Seed: ev.Seed}
			}
			t0 := time.Now()
			resp, err := w.call.Call(req)
			if err != nil {
				w.err = fmt.Errorf("workload: worker %d: %s %s: %w", w.id, req.Op, ev.Device, err)
				return
			}
			if resp.OK {
				rt := time.Since(t0)
				if ev.Kind == EvBoot {
					w.boot = append(w.boot, rt)
					bootHist.ObserveDuration(rt)
				} else {
					w.flip = append(w.flip, rt)
					flipHist.ObserveDuration(rt)
				}
				w.stepsOK++
				okCounter.Inc()
			} else {
				w.countShed(resp.Code)
			}
			i++
			continue
		}

		// Coalesce the run of due burst-class events into one OpBatch.
		// Stopping at the first not-due or non-burst event preserves the
		// log's per-device order.
		var steps []serve.BatchStep
		j := i
		for j < len(w.events) && len(steps) < maxBatch {
			next := w.events[j]
			if !burstClass(next.Kind) || time.Now().Before(due(next)) {
				break
			}
			steps = append(steps, serve.BatchStep{
				Device: next.Device, Kind: driveKind(next.Kind),
				Seed: next.Seed, Events: next.Events,
			})
			j++
		}
		if len(steps) == 0 { // woke exactly at due; take just this event
			steps = append(steps, serve.BatchStep{
				Device: ev.Device, Kind: driveKind(ev.Kind),
				Seed: ev.Seed, Events: ev.Events,
			})
			j = i + 1
		}
		batchGauge.Set(int64(len(steps)))
		t0 := time.Now()
		resp, err := w.call.Call(serve.Request{ID: id, Op: serve.OpBatch, Batch: steps})
		if err != nil {
			w.err = fmt.Errorf("workload: worker %d: batch of %d: %w", w.id, len(steps), err)
			return
		}
		if len(resp.Results) > 0 {
			rt := time.Since(t0)
			w.batch = append(w.batch, rt)
			batchHist.ObserveDuration(rt)
			for _, res := range resp.Results {
				if res.OK {
					w.stepsOK++
					okCounter.Inc()
				} else {
					w.countShed(res.Code)
				}
			}
		} else {
			// Whole-batch refusal with no per-step results (draining,
			// abort): every step inherits the top-level code.
			for range steps {
				w.countShed(resp.Code)
			}
		}
		i = j
	}
}

// countShed tallies one refused or failed event under its wire code.
func (w *worker) countShed(code serve.ErrCode) {
	name := string(code)
	if name == "" {
		name = "unknown"
	}
	w.shed[name]++
	w.sh.Counter("replay_shed_"+name+"_total", "events shed with code "+name, obs.Wall).Inc()
	w.sh.Counter("replay_shed_total", "events shed or failed (all codes)", obs.Wall).Inc()
}

// fetchServerCounters reads the fleet's merged snapshot once after the
// run and folds its degradation counters into the report.
func fetchServerCounters(dial Dialer, rep *Report) error {
	c, err := dial()
	if err != nil {
		return fmt.Errorf("workload: dial for final stats: %w", err)
	}
	defer c.Close()
	resp, err := c.Call(serve.Request{ID: "final-stats", Op: serve.OpStats})
	if err != nil {
		return fmt.Errorf("workload: final stats: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("workload: final stats refused: %s %s", resp.Code, resp.Detail)
	}
	snap, err := obs.DecodeSnapshot(resp.Metrics)
	if err != nil {
		return fmt.Errorf("workload: final stats snapshot: %w", err)
	}
	rep.BreakerOpens = counterValue(snap, "serve_breaker_opens_total")
	rep.GuardQuarantines = counterValue(snap, "serve_guard_quarantines_total")
	rep.GuardRecoveries = counterValue(snap, "serve_guard_recoveries_total")
	rep.GuardBreakerOpens = counterValue(snap, "serve_guard_breaker_opens_total")
	return nil
}

// counterValue reads one counter from a decoded snapshot (0 if absent).
func counterValue(snap *obs.Snapshot, name string) int64 {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}
