package workload

import (
	"bytes"
	"testing"
	"time"

	"rchdroid/internal/obs"
	"rchdroid/internal/serve"
)

// replayOnce runs lg against a fresh server and returns the report plus
// the replay registry's canonical (sim-domain) dump.
func replayOnce(t *testing.T, lg *Log, shards int, speed float64) (*Report, []byte) {
	t.Helper()
	s := serve.New(serve.Config{Shards: shards})
	defer s.Drain(10 * time.Second)
	reg := obs.NewRegistry()
	rep, err := Replay(lg, Config{
		Speed: speed, Window: 4, Dial: LocalDialer(s), Obs: reg,
	})
	if err != nil {
		t.Fatalf("replay (shards=%d speed=%v): %v", shards, speed, err)
	}
	return rep, reg.Snapshot().MarshalCanonical()
}

// TestReplayDeterministicAcrossShardsAndSpeeds is the tentpole
// contract: the canonical sim-domain dump derives from the log alone,
// so replaying the same log at 1 vs N shards and at different speeds
// byte-compares equal. Wall metrics (latency, shed, lag) are
// quarantined outside the canonical dump and free to differ.
func TestReplayDeterministicAcrossShardsAndSpeeds(t *testing.T) {
	lg := Generate(GenSpec{Seed: 11, Devices: 4, SpanMS: 1_500, EventsPerDevice: 8})

	rep1, canon1 := replayOnce(t, lg, 1, 1000)
	repN, canonN := replayOnce(t, lg, 3, 1000)
	_, canonSlow := replayOnce(t, lg, 2, 100)

	if !bytes.Equal(canon1, canonN) {
		t.Fatalf("canonical dump differs between 1 and 3 shards:\n%s\nvs\n%s", canon1, canonN)
	}
	if !bytes.Equal(canon1, canonSlow) {
		t.Fatalf("canonical dump differs between 1000x and 100x:\n%s\nvs\n%s", canon1, canonSlow)
	}

	// Every event is accounted for: completed or shed with a code.
	for _, rep := range []*Report{rep1, repN} {
		var shed int64
		for _, n := range rep.Shed {
			shed += n
		}
		if rep.StepsOK+shed != int64(rep.Events) {
			t.Fatalf("accounting leak: ok=%d shed=%d events=%d", rep.StepsOK, shed, rep.Events)
		}
	}
}

// TestReplayAtOneX replays a short log in real time: pacing must
// stretch the run to roughly the sim span, and achieved speed lands
// near 1x.
func TestReplayAtOneX(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time pacing test")
	}
	lg := Generate(GenSpec{Seed: 5, Devices: 2, SpanMS: 800, EventsPerDevice: 4})
	start := time.Now()
	rep, _ := replayOnce(t, lg, 1, 1)
	elapsed := time.Since(start)
	if elapsed < 600*time.Millisecond {
		t.Fatalf("1x replay of an 800ms span finished in %v — pacing is broken", elapsed)
	}
	if rep.AchievedSpeed > 1.6 {
		t.Fatalf("achieved speed %.2f at requested 1x", rep.AchievedSpeed)
	}
}

// TestReplaySLOReport checks the report carries the production-style
// SLO surface: per-op-class percentiles with N matching the log's kind
// mix, zero sheds on an unloaded fleet, and server counters present.
func TestReplaySLOReport(t *testing.T) {
	lg := Generate(GenSpec{Seed: 21, Devices: 4, SpanMS: 2_000, EventsPerDevice: 10})
	flips, bursts := 0, 0
	for _, ev := range lg.Events {
		switch ev.Kind {
		case EvRotate, EvNight, EvDay:
			flips++
		case EvSwitch, EvTrim, EvBurst:
			bursts++
		}
	}
	rep, _ := replayOnce(t, lg, 2, 1000)

	if rep.Boot.N != 4 {
		t.Fatalf("boot samples = %d, want 4 (one per device): %+v", rep.Boot.N, rep)
	}
	if rep.Flip.N != flips {
		t.Fatalf("flip samples = %d, want %d", rep.Flip.N, flips)
	}
	if rep.StepsOK != int64(rep.Events) || len(rep.Shed) != 0 {
		t.Fatalf("unloaded fleet shed traffic: ok=%d/%d shed=%v", rep.StepsOK, rep.Events, rep.Shed)
	}
	if bursts > 0 && rep.Batch.N == 0 {
		t.Fatal("no batched round-trips recorded for a log with burst-class events")
	}
	for _, st := range []struct {
		name          string
		p50, p99, max float64
	}{{"boot", rep.Boot.P50MS, rep.Boot.P99MS, rep.Boot.MaxMS}, {"flip", rep.Flip.P50MS, rep.Flip.P99MS, rep.Flip.MaxMS}} {
		if st.p50 <= 0 || st.p99 < st.p50 || st.max < st.p99 {
			t.Fatalf("%s percentiles inconsistent: p50=%v p99=%v max=%v", st.name, st.p50, st.p99, st.max)
		}
	}
	if rep.BreakerOpens != 0 {
		t.Fatalf("breaker opened on an unloaded fleet: %d", rep.BreakerOpens)
	}
}

// TestReplayShedAccounting drives a trace into a deliberately tiny
// fleet (one shard, queue depth 1) at full speed: whatever is refused
// must surface under a machine-readable code, never vanish.
func TestReplayShedAccounting(t *testing.T) {
	lg := Generate(GenSpec{Seed: 3, Devices: 6, SpanMS: 1_000, EventsPerDevice: 12})
	s := serve.New(serve.Config{Shards: 1, QueueDepth: 1})
	defer s.Drain(10 * time.Second)
	rep, err := Replay(lg, Config{Speed: 1000, Window: 6, Dial: LocalDialer(s)})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	var shed int64
	for code, n := range rep.Shed {
		if code == "" {
			t.Fatalf("shed without a code: %+v", rep.Shed)
		}
		shed += n
	}
	if rep.StepsOK+shed != int64(rep.Events) {
		t.Fatalf("accounting leak under overload: ok=%d shed=%d events=%d", rep.StepsOK, shed, rep.Events)
	}
	if shed > 0 {
		if rep.ShedRate <= 0 {
			t.Fatalf("shed %d events but shed_rate = %v", shed, rep.ShedRate)
		}
		if _, ok := rep.Shed[string(serve.CodeOverloaded)]; !ok && len(rep.Shed) == 0 {
			t.Fatalf("no overload code in %v", rep.Shed)
		}
	}
}

// TestReplayRejectsBadConfig: no dialer and broken logs fail fast.
func TestReplayRejectsBadConfig(t *testing.T) {
	lg := Generate(GenSpec{Seed: 1, Devices: 1, SpanMS: 100, EventsPerDevice: 2})
	if _, err := Replay(lg, Config{}); err == nil {
		t.Fatal("replay without a dialer must fail")
	}
	bad := &Log{Header: Header{Format: FormatName, Version: FormatVersion, Devices: 1, SpanMS: 10, Events: 1},
		Events: []Event{{AtMS: 1, Device: "d", Kind: "rotate"}}}
	s := serve.New(serve.Config{Shards: 1})
	defer s.Drain(5 * time.Second)
	if _, err := Replay(bad, Config{Dial: LocalDialer(s)}); err == nil {
		t.Fatal("replay of an invalid log must fail validation")
	}
}
