package workload

import (
	"bytes"
	"strings"
	"testing"
)

// TestEncodeDecodeRoundTrip: a generated log survives encode → decode →
// encode with byte-identical output.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	lg := Generate(GenSpec{Seed: 7, Devices: 4, SpanMS: 10_000, EventsPerDevice: 10})
	b1 := lg.Encode()
	back, err := Decode(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b2 := back.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("encode→decode→encode is not byte-identical")
	}
}

// TestDecodeStrictness: every contract violation is an explicit error,
// never a guess.
func TestDecodeStrictness(t *testing.T) {
	lg := Generate(GenSpec{Seed: 7, Devices: 2, SpanMS: 5_000, EventsPerDevice: 6})
	good := string(lg.Encode())
	lines := strings.SplitAfter(strings.TrimRight(good, "\n"), "\n")

	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty log"},
		{"wrong format", `{"format":"other","version":1}` + "\n", `format "other"`},
		{"future version", `{"format":"rch-workload","version":99,"devices":0,"span_ms":1,"events":0}` + "\n", "version 99"},
		{"garbage header", "not json\n", "header line"},
		{"count mismatch", lines[0] + strings.Join(lines[1:len(lines)-1], ""), "header promises"},
		{"unknown kind", `{"format":"rch-workload","version":1,"devices":1,"span_ms":10,"events":1}` + "\n" +
			`{"at_ms":1,"device":"d","kind":"warp"}` + "\n", `unknown kind "warp"`},
		{"drive before boot", `{"format":"rch-workload","version":1,"devices":1,"span_ms":10,"events":1}` + "\n" +
			`{"at_ms":1,"device":"d","kind":"rotate"}` + "\n", "before its boot"},
		{"unsorted", `{"format":"rch-workload","version":1,"devices":1,"span_ms":10,"events":2}` + "\n" +
			`{"at_ms":5,"device":"d","kind":"boot"}` + "\n" +
			`{"at_ms":1,"device":"d","kind":"rotate"}` + "\n", "not sorted"},
		{"past span", `{"format":"rch-workload","version":1,"devices":1,"span_ms":10,"events":1}` + "\n" +
			`{"at_ms":99,"device":"d","kind":"boot"}` + "\n", "past span"},
		{"double boot", `{"format":"rch-workload","version":1,"devices":1,"span_ms":10,"events":2}` + "\n" +
			`{"at_ms":1,"device":"d","kind":"boot"}` + "\n" +
			`{"at_ms":2,"device":"d","kind":"boot"}` + "\n", "boots twice"},
	}
	for _, tc := range cases {
		_, err := Decode(strings.NewReader(tc.input))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := Decode(strings.NewReader(good)); err != nil {
		t.Fatalf("control: the unmodified log must decode: %v", err)
	}
}

// TestGenerateByteReproducible: the generator is a pure function of its
// spec, down to the bytes; the seed actually matters.
func TestGenerateByteReproducible(t *testing.T) {
	spec := GenSpec{Seed: 42, Devices: 8, SpanMS: 60_000, EventsPerDevice: 40}
	a := Generate(spec).Encode()
	b := Generate(spec).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("same spec generated different bytes")
	}
	spec.Seed = 43
	if bytes.Equal(a, Generate(spec).Encode()) {
		t.Fatal("different seeds generated identical bytes")
	}
}

// TestGenerateValidAndDiurnal: generated logs satisfy the format
// contract and actually carry the diurnal shape — the evening peak
// slice is visibly denser than the night trough.
func TestGenerateValidAndDiurnal(t *testing.T) {
	lg := Generate(GenSpec{Seed: 9, Devices: 16, SpanMS: 120_000, EventsPerDevice: 60})
	if err := lg.Validate(); err != nil {
		t.Fatalf("generated log invalid: %v", err)
	}
	boots := 0
	perSlice := make([]int, 24)
	for _, ev := range lg.Events {
		if ev.Kind == EvBoot {
			boots++
			continue
		}
		slice := int(ev.AtMS * 24 / lg.Header.SpanMS)
		if slice > 23 {
			slice = 23
		}
		perSlice[slice]++
	}
	if boots != 16 {
		t.Fatalf("boots = %d, want 16", boots)
	}
	// Slice 18 carries weight 10, slice 1 weight 1: the density gap must
	// be unmistakable.
	if perSlice[18] <= 2*perSlice[1] {
		t.Fatalf("no diurnal shape: peak slice 18 has %d events, trough slice 1 has %d",
			perSlice[18], perSlice[1])
	}
}
