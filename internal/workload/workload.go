// Package workload is the trace layer: a deterministic, versioned
// event-log format for fleet traffic, seeded generators that shape logs
// like a production day, and a replay engine that pushes a log through
// a live rchserve fleet over the wire API at 1×–1000× speed.
//
// A workload log is the fleet analogue of a sweep's seed range: the
// whole run derives from the log bytes, so replaying the same log twice
// — against one shard or eight, at 1× or 1000× — exercises the fleet
// under identical traffic. The determinism contract splits the same way
// obs does:
//
//   - Sim domain: everything derived from the log alone (event counts
//     by kind, device count, span, format version). These land in the
//     canonical metrics dump and byte-compare equal across shard counts
//     and replay speeds.
//   - Wall domain: per-op latencies, shed counts, lag — the measurement
//     the replay exists to take. Quarantined outside the canonical dump
//     like every other wall metric in the tree.
//
// The log format is line-delimited JSON: one header line naming the
// format and version, then one line per event, sorted by sim timestamp.
// Version checks are strict — a reader never guesses at a log shape.
package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Format identity. Decode rejects anything else.
const (
	FormatName    = "rch-workload"
	FormatVersion = 1
)

// Event kinds. EvBoot arrives a device; the rest are drive traffic and
// map onto serve drive kinds (EvBurst is a seeded monkey burst —
// serve's KindMonkey).
const (
	EvBoot   = "boot"
	EvSwitch = "switch"
	EvRotate = "rotate"
	EvNight  = "night"
	EvDay    = "day"
	EvTrim   = "trim"
	EvBurst  = "burst"
)

// knownKind reports whether k is a kind this format version defines.
func knownKind(k string) bool {
	switch k {
	case EvBoot, EvSwitch, EvRotate, EvNight, EvDay, EvTrim, EvBurst:
		return true
	}
	return false
}

// Header is the log's first line.
type Header struct {
	// Format and Version identify the log shape; Decode is strict about
	// both.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Seed is the generator seed the log derives from (0 for hand-built
	// logs). Informational: replay never re-rolls it.
	Seed uint64 `json:"seed"`
	// Devices is the fleet size the log drives.
	Devices int `json:"devices"`
	// SpanMS is the log's sim duration: the last event's timestamp never
	// exceeds it. Replay at speed S targets SpanMS/S of wall time.
	SpanMS int64 `json:"span_ms"`
	// Events is the event-line count; Decode cross-checks it.
	Events int `json:"events"`
}

// Event is one log line: something that happens to one device at one
// sim instant. Idle gaps are not events — they are the distance between
// consecutive timestamps, which replay converts to wall pauses.
type Event struct {
	// AtMS is the sim timestamp (ms from log start). Events are sorted
	// by AtMS; replay at speed S is due at wall start + AtMS/S.
	AtMS int64 `json:"at_ms"`
	// Device names the target. The first event for a device must be its
	// EvBoot.
	Device string `json:"device"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Handler picks the change handler for EvBoot ("rch", "guarded",
	// "stock"; empty = rch).
	Handler string `json:"handler,omitempty"`
	// Seed drives boot forking and burst monkeys.
	Seed uint64 `json:"seed,omitempty"`
	// Events sizes an EvBurst monkey run.
	Events int `json:"events,omitempty"`
}

// Log is a decoded (or generated) workload.
type Log struct {
	Header Header
	Events []Event
}

// Encode renders the log as its canonical bytes: header line then one
// line per event. Encoding the same Log always yields identical bytes
// (struct field order is fixed), so generator reproducibility is
// byte-level.
func (l *Log) Encode() []byte {
	var buf bytes.Buffer
	hdr, _ := json.Marshal(l.Header)
	buf.Write(hdr)
	buf.WriteByte('\n')
	for i := range l.Events {
		ev, _ := json.Marshal(&l.Events[i])
		buf.Write(ev)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Decode reads and validates a log. It is strict: wrong format name or
// version, unknown kinds, unsorted timestamps, drives before their
// device's boot, and event-count mismatches are all errors, never
// guesses.
func Decode(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: read header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty log")
	}
	var l Log
	if err := json.Unmarshal(sc.Bytes(), &l.Header); err != nil {
		return nil, fmt.Errorf("workload: header line: %w", err)
	}
	if l.Header.Format != FormatName {
		return nil, fmt.Errorf("workload: format %q, want %q", l.Header.Format, FormatName)
	}
	if l.Header.Version != FormatVersion {
		return nil, fmt.Errorf("workload: version %d, this reader speaks only %d", l.Header.Version, FormatVersion)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		l.Events = append(l.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}

// Validate checks the log's internal contract (the part of Decode that
// also applies to hand-built logs).
func (l *Log) Validate() error {
	if got, want := len(l.Events), l.Header.Events; got != want {
		return fmt.Errorf("workload: header promises %d events, log carries %d", want, got)
	}
	booted := make(map[string]bool, l.Header.Devices)
	var prev int64
	for i := range l.Events {
		ev := &l.Events[i]
		if !knownKind(ev.Kind) {
			return fmt.Errorf("workload: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Device == "" {
			return fmt.Errorf("workload: event %d: empty device", i)
		}
		if ev.AtMS < prev {
			return fmt.Errorf("workload: event %d: timestamp %d before %d — log is not sorted", i, ev.AtMS, prev)
		}
		if ev.AtMS > l.Header.SpanMS {
			return fmt.Errorf("workload: event %d: timestamp %d past span %d", i, ev.AtMS, l.Header.SpanMS)
		}
		prev = ev.AtMS
		if ev.Kind == EvBoot {
			if booted[ev.Device] {
				return fmt.Errorf("workload: event %d: device %q boots twice", i, ev.Device)
			}
			booted[ev.Device] = true
		} else if !booted[ev.Device] {
			return fmt.Errorf("workload: event %d: %s for %q before its boot", i, ev.Kind, ev.Device)
		}
	}
	if got := len(booted); got != l.Header.Devices {
		return fmt.Errorf("workload: header promises %d devices, log boots %d", l.Header.Devices, got)
	}
	return nil
}
