// Package script provides a tiny scenario language for driving the
// simulated device from text — the reproduction's `adb shell` session.
// One command per line; '#' starts a comment. Commands:
//
//	wm size <W>x<H>      push a screen-size change (artifact appendix)
//	wm size reset        restore the default 1920x1080
//	rotate               rotate the current configuration
//	locale <tag>         switch language
//	night on|off         switch UI mode
//	touch                tap the benchmark app's update button
//	wait <dur>           advance virtual time (Go duration, e.g. 500ms)
//	back                 finish the top activity
//	front <package>      bring an app's task to the foreground
//	expect alive         fail if the foreground app crashed
//	expect crashed       fail unless the foreground app crashed
//	expect handled <n>   fail unless exactly n changes completed
//
// Scripts are deterministic: the same script always produces the same
// trace and the same measurements.
package script

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/benchapp"
	"rchdroid/internal/config"
	"rchdroid/internal/sim"
)

// Env is the device a script runs against.
type Env struct {
	Sched *sim.Scheduler
	Sys   *atms.ATMS
	// Procs maps package names to their processes; Default is used by
	// commands that target "the app" (touch, expect).
	Procs   map[string]*app.Process
	Default *app.Process
}

// Step is one parsed command.
type Step struct {
	Line int
	Text string
	run  func(*Env) error
}

// Parse compiles a script into steps. Unknown commands are errors at
// parse time, carrying the line number.
func Parse(src string) ([]Step, error) {
	var steps []Step
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := strings.TrimSpace(raw)
		if idx := strings.IndexByte(text, '#'); idx >= 0 {
			text = strings.TrimSpace(text[:idx])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		run, err := compile(fields)
		if err != nil {
			return nil, fmt.Errorf("script line %d: %w", line, err)
		}
		steps = append(steps, Step{Line: line, Text: text, run: run})
	}
	return steps, nil
}

func compile(fields []string) (func(*Env) error, error) {
	settle := func(e *Env) { e.Sched.Advance(2 * time.Second) }
	switch fields[0] {
	case "wm":
		if len(fields) != 3 || fields[1] != "size" {
			return nil, fmt.Errorf("usage: wm size <W>x<H> | wm size reset")
		}
		if fields[2] == "reset" {
			return func(e *Env) error {
				e.Sys.PushConfiguration(config.Default())
				settle(e)
				return nil
			}, nil
		}
		parts := strings.SplitN(fields[2], "x", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad size %q", fields[2])
		}
		w, errW := strconv.Atoi(parts[0])
		h, errH := strconv.Atoi(parts[1])
		if errW != nil || errH != nil || w <= 0 || h <= 0 {
			return nil, fmt.Errorf("bad size %q", fields[2])
		}
		return func(e *Env) error {
			e.Sys.PushConfiguration(e.Sys.GlobalConfig().Resized(w, h))
			settle(e)
			return nil
		}, nil
	case "rotate":
		return func(e *Env) error {
			e.Sys.PushConfiguration(e.Sys.GlobalConfig().Rotated())
			settle(e)
			return nil
		}, nil
	case "locale":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: locale <tag>")
		}
		tag := fields[1]
		return func(e *Env) error {
			e.Sys.PushConfiguration(e.Sys.GlobalConfig().WithLocale(tag))
			settle(e)
			return nil
		}, nil
	case "night":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			return nil, fmt.Errorf("usage: night on|off")
		}
		mode := config.UIModeDay
		if fields[1] == "on" {
			mode = config.UIModeNight
		}
		return func(e *Env) error {
			e.Sys.PushConfiguration(e.Sys.GlobalConfig().WithUIMode(mode))
			settle(e)
			return nil
		}, nil
	case "touch":
		return func(e *Env) error {
			if e.Default == nil {
				return fmt.Errorf("no default app to touch")
			}
			benchapp.TouchButton(e.Default)
			e.Sched.Advance(50 * time.Millisecond)
			return nil
		}, nil
	case "wait":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: wait <duration>")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", fields[1])
		}
		return func(e *Env) error {
			e.Sched.Advance(d)
			return nil
		}, nil
	case "back":
		return func(e *Env) error {
			e.Sys.FinishTopActivity()
			settle(e)
			return nil
		}, nil
	case "front":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: front <package>")
		}
		pkg := fields[1]
		return func(e *Env) error {
			e.Sys.MoveTaskToFront(pkg)
			settle(e)
			return nil
		}, nil
	case "expect":
		if len(fields) < 2 {
			return nil, fmt.Errorf("usage: expect alive|crashed|handled <n>")
		}
		switch fields[1] {
		case "alive":
			return func(e *Env) error {
				if e.Default != nil && e.Default.Crashed() {
					return fmt.Errorf("expected alive, but app crashed: %v", e.Default.CrashCause())
				}
				return nil
			}, nil
		case "crashed":
			return func(e *Env) error {
				if e.Default == nil || !e.Default.Crashed() {
					return fmt.Errorf("expected a crash, app is alive")
				}
				return nil
			}, nil
		case "handled":
			if len(fields) != 3 {
				return nil, fmt.Errorf("usage: expect handled <n>")
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bad count %q", fields[2])
			}
			return func(e *Env) error {
				if got := len(e.Sys.HandlingTimes()); got != n {
					return fmt.Errorf("expected %d handled changes, have %d", n, got)
				}
				return nil
			}, nil
		default:
			return nil, fmt.Errorf("unknown expectation %q", fields[1])
		}
	default:
		return nil, fmt.Errorf("unknown command %q", fields[0])
	}
}

// Run executes steps in order, stopping at the first failure; the error
// names the offending line.
func Run(env *Env, steps []Step) error {
	for _, s := range steps {
		if err := s.run(env); err != nil {
			return fmt.Errorf("script line %d (%s): %w", s.Line, s.Text, err)
		}
	}
	return nil
}
