package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/benchapp"
	"rchdroid/internal/config"
	"rchdroid/internal/core"
	"rchdroid/internal/costmodel"
	"rchdroid/internal/sim"
)

func newEnv(t *testing.T, rch bool) *Env {
	t.Helper()
	sched := sim.NewScheduler()
	model := costmodel.Default()
	sys := atms.New(sched, model)
	proc := app.NewProcess(sched, model, benchapp.New(benchapp.Config{Images: 4, TaskDelay: 300 * time.Millisecond}))
	if rch {
		core.Install(sys, proc, core.DefaultOptions())
	}
	sys.LaunchApp(proc)
	sched.Advance(2 * time.Second)
	return &Env{
		Sched:   sched,
		Sys:     sys,
		Procs:   map[string]*app.Process{proc.App().Name: proc},
		Default: proc,
	}
}

func TestArtifactWorkflowScript(t *testing.T) {
	// The appendix A.5 workflow, verbatim: size change, touch, size
	// reset while the task is in flight.
	src := `
# reproduce Figure 9's workflow
wm size 1080x1920
touch
wm size reset
wait 1s
expect alive
expect handled 2
`
	env := newEnv(t, true)
	steps, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("steps = %d", len(steps))
	}
	if err := Run(env, steps); err != nil {
		t.Fatal(err)
	}
	if got := benchapp.ImagesLoaded(env.Default.Thread().ForegroundActivity()); got != 4 {
		t.Fatalf("images migrated = %d", got)
	}
}

func TestSameScriptCrashesStock(t *testing.T) {
	src := "wm size 1080x1920\ntouch\nwm size reset\nwait 1s\nexpect crashed\n"
	env := newEnv(t, false)
	steps, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(env, steps); err != nil {
		t.Fatal(err)
	}
}

func TestAllCommandsExecute(t *testing.T) {
	src := `
rotate
locale fr-FR
night on
night off
wait 250ms
front benchapp-4
expect alive
expect handled 4
`
	env := newEnv(t, true)
	steps, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(env, steps); err != nil {
		t.Fatal(err)
	}
	if env.Sys.GlobalConfig().Locale != "fr-FR" {
		t.Fatal("locale command had no effect")
	}
}

func TestBackCommand(t *testing.T) {
	env := newEnv(t, true)
	steps, _ := Parse("back\n")
	if err := Run(env, steps); err != nil {
		t.Fatal(err)
	}
	if len(env.Default.Thread().Activities()) != 0 {
		t.Fatal("back did not finish the activity")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"teleport",
		"wm size",
		"wm size abc",
		"wm size 12",
		"wm size 0x5",
		"locale",
		"night maybe",
		"wait",
		"wait xyz",
		"front",
		"expect",
		"expect wat",
		"expect handled",
		"expect handled many",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Parse(%q) error lacks line info: %v", src, err)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	steps, err := Parse("\n# only a comment\n   \nrotate # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Text != "rotate" {
		t.Fatalf("steps = %+v", steps)
	}
}

func TestRunReportsFailingLine(t *testing.T) {
	env := newEnv(t, true)
	steps, err := Parse("rotate\nexpect crashed\n")
	if err != nil {
		t.Fatal(err)
	}
	runErr := Run(env, steps)
	if runErr == nil || !strings.Contains(runErr.Error(), "line 2") {
		t.Fatalf("error = %v", runErr)
	}
}

func TestExpectHandledMismatch(t *testing.T) {
	env := newEnv(t, true)
	steps, _ := Parse("expect handled 3\n")
	if err := Run(env, steps); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestConfigReset(t *testing.T) {
	env := newEnv(t, true)
	steps, _ := Parse("wm size 500x900\nwm size reset\n")
	if err := Run(env, steps); err != nil {
		t.Fatal(err)
	}
	if !env.Sys.GlobalConfig().Equal(config.Default()) {
		t.Fatal("reset did not restore the default configuration")
	}
}

func TestShippedArtifactScripts(t *testing.T) {
	// The checked-in scripts/*.rch files must parse and pass against
	// RCHDroid.
	for _, name := range []string{"fig9.rch", "fig10.rch"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "scripts", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		steps, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		env := newEnv(t, true)
		if err := Run(env, steps); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
