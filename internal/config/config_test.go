package config

import (
	"testing"
	"testing/quick"
)

func TestDefaultIsLandscape1080p(t *testing.T) {
	c := Default()
	if c.Orientation != OrientationLandscape {
		t.Errorf("orientation = %v", c.Orientation)
	}
	if c.ScreenWidth != 1920 || c.ScreenHeight != 1080 {
		t.Errorf("size = %dx%d", c.ScreenWidth, c.ScreenHeight)
	}
	if c.FontScale != 1.0 || c.Locale != "en-US" {
		t.Errorf("locale/fontscale = %q/%v", c.Locale, c.FontScale)
	}
}

func TestRotatedSwapsAndRelabels(t *testing.T) {
	p := Default().Rotated()
	if p.Orientation != OrientationPortrait {
		t.Errorf("rotated orientation = %v", p.Orientation)
	}
	if p.ScreenWidth != 1080 || p.ScreenHeight != 1920 {
		t.Errorf("rotated size = %dx%d", p.ScreenWidth, p.ScreenHeight)
	}
	back := p.Rotated()
	if !back.Equal(Default()) {
		t.Error("double rotation is not identity")
	}
}

func TestPortraitMatchesArtifactCommand(t *testing.T) {
	// `wm size 1080x1920`
	if !Portrait().Equal(Default().Resized(1080, 1920)) {
		t.Error("Portrait() != Resized(1080,1920)")
	}
}

func TestDiffMasks(t *testing.T) {
	base := Default()
	cases := []struct {
		name string
		mod  Configuration
		want Change
	}{
		{"identity", base, None},
		{"rotate", base.Rotated(), ChangeOrientation | ChangeScreenSize},
		{"resize same orientation", base.Resized(1280, 720), ChangeScreenSize},
		{"locale", base.WithLocale("zh-CN"), ChangeLocale},
		{"fontscale", base.WithFontScale(1.3), ChangeFontScale},
		{"keyboard", base.WithKeyboard(KeyboardQwerty), ChangeKeyboard},
		{"uimode", base.WithUIMode(UIModeNight), ChangeUIMode},
		{"density", func() Configuration { c := base; c.DensityDPI = 320; return c }(), ChangeDensity},
	}
	for _, tc := range cases {
		if got := base.Diff(tc.mod); got != tc.want {
			t.Errorf("%s: diff = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDiffIsSymmetric(t *testing.T) {
	a, b := Default(), Portrait().WithLocale("fr-FR")
	if a.Diff(b) != b.Diff(a) {
		t.Error("diff not symmetric")
	}
}

func TestHandledBy(t *testing.T) {
	change := ChangeOrientation | ChangeScreenSize
	if !change.HandledBy(ChangeOrientation | ChangeScreenSize | ChangeLocale) {
		t.Error("superset declaration should handle")
	}
	if change.HandledBy(ChangeOrientation) {
		t.Error("partial declaration should not handle")
	}
	if !None.HandledBy(None) {
		t.Error("no change is always handled")
	}
}

func TestChangeString(t *testing.T) {
	if None.String() != "none" {
		t.Errorf("None = %q", None.String())
	}
	got := (ChangeOrientation | ChangeLocale).String()
	if got != "orientation|locale" {
		t.Errorf("mask string = %q", got)
	}
}

func TestQualifierStrings(t *testing.T) {
	if OrientationPortrait.String() != "portrait" ||
		OrientationLandscape.String() != "landscape" ||
		OrientationUndefined.String() != "undefined" {
		t.Error("orientation strings wrong")
	}
	if KeyboardQwerty.String() != "qwerty" || KeyboardNone.String() != "nokeys" {
		t.Error("keyboard strings wrong")
	}
	if UIModeNight.String() != "night" || UIModeDay.String() != "day" {
		t.Error("ui mode strings wrong")
	}
}

func TestConfigurationString(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"landscape", "1920x1080", "160dpi", "en-US"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: Diff(x,x) == None for arbitrary configurations; Equal agrees
// with a zero diff; rotation twice is the identity.
func TestDiffProperties(t *testing.T) {
	gen := func(w, h uint16, dpi uint8, locale bool) Configuration {
		c := Default().Resized(int(w)+1, int(h)+1)
		c.DensityDPI = int(dpi) + 100
		if locale {
			c.Locale = "ja-JP"
		}
		return c
	}
	f := func(w, h uint16, dpi uint8, locale bool) bool {
		c := gen(w, h, dpi, locale)
		if c.Diff(c) != None || !c.Equal(c) {
			return false
		}
		return c.Rotated().Rotated().Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a change mask is always handled by itself and by the full mask.
func TestHandledByProperty(t *testing.T) {
	f := func(m uint8) bool {
		mask := Change(m) & (ChangeUIMode<<1 - 1)
		full := ChangeOrientation | ChangeScreenSize | ChangeDensity |
			ChangeLocale | ChangeFontScale | ChangeKeyboard | ChangeUIMode
		return mask.HandledBy(mask) && mask.HandledBy(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
