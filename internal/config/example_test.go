package config_test

import (
	"fmt"

	"rchdroid/internal/config"
)

// Example shows how a rotation diff decides whether an activity restarts:
// the change mask must be fully covered by android:configChanges.
func Example() {
	before := config.Default()
	after := before.Rotated()

	diff := before.Diff(after)
	fmt.Println("changed:", diff)

	declared := config.ChangeOrientation // app declared orientation only
	fmt.Println("handled by app:", diff.HandledBy(declared))
	fmt.Println("handled by app:", diff.HandledBy(declared|config.ChangeScreenSize))
	// Output:
	// changed: orientation|screenSize
	// handled by app: false
	// handled by app: true
}
