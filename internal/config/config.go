// Package config models Android's resource Configuration: the set of
// device parameters (orientation, screen size, locale, density, …) whose
// runtime changes trigger the activity restart that RCHDroid eliminates.
//
// The package mirrors the parts of android.content.res.Configuration the
// paper exercises: computing a change mask between two configurations
// (Configuration.diff), deciding whether an activity that declared
// android:configChanges handles the change itself, and the `adb shell wm
// size WxH` style screen resizes the artifact appendix uses to trigger
// changes.
package config

import (
	"fmt"
	"strings"
)

// Orientation is the screen orientation qualifier.
type Orientation uint8

// Orientation values.
const (
	OrientationUndefined Orientation = iota
	OrientationPortrait
	OrientationLandscape
)

func (o Orientation) String() string {
	switch o {
	case OrientationPortrait:
		return "portrait"
	case OrientationLandscape:
		return "landscape"
	default:
		return "undefined"
	}
}

// Keyboard models the hardware-keyboard qualifier (attachment of a
// keyboard is one of the runtime changes the paper's introduction lists).
type Keyboard uint8

// Keyboard values.
const (
	KeyboardNone Keyboard = iota
	KeyboardQwerty
)

func (k Keyboard) String() string {
	if k == KeyboardQwerty {
		return "qwerty"
	}
	return "nokeys"
}

// UIMode models day/night mode.
type UIMode uint8

// UIMode values.
const (
	UIModeDay UIMode = iota
	UIModeNight
)

func (m UIMode) String() string {
	if m == UIModeNight {
		return "night"
	}
	return "day"
}

// Change is a bitmask of configuration dimensions that differ between two
// configurations, mirroring the ActivityInfo.CONFIG_* constants.
type Change uint32

// Change mask bits.
const (
	ChangeOrientation Change = 1 << iota
	ChangeScreenSize
	ChangeDensity
	ChangeLocale
	ChangeFontScale
	ChangeKeyboard
	ChangeUIMode
)

// None means the two configurations are identical.
const None Change = 0

var changeNames = []struct {
	bit  Change
	name string
}{
	{ChangeOrientation, "orientation"},
	{ChangeScreenSize, "screenSize"},
	{ChangeDensity, "density"},
	{ChangeLocale, "locale"},
	{ChangeFontScale, "fontScale"},
	{ChangeKeyboard, "keyboard"},
	{ChangeUIMode, "uiMode"},
}

// Has reports whether the mask contains bit.
func (c Change) Has(bit Change) bool { return c&bit != 0 }

func (c Change) String() string {
	if c == None {
		return "none"
	}
	var parts []string
	for _, cn := range changeNames {
		if c.Has(cn.bit) {
			parts = append(parts, cn.name)
		}
	}
	return strings.Join(parts, "|")
}

// Configuration is a full device configuration snapshot. It is a value
// type: copies are independent.
type Configuration struct {
	Orientation  Orientation
	ScreenWidth  int // pixels
	ScreenHeight int // pixels
	DensityDPI   int
	Locale       string // BCP-47-ish tag, e.g. "en-US"
	FontScale    float64
	Keyboard     Keyboard
	UIMode       UIMode
}

// Default returns the configuration the paper's development board boots
// with: 1920x1080 landscape, 160 dpi, English, normal font scale.
func Default() Configuration {
	return Configuration{
		Orientation:  OrientationLandscape,
		ScreenWidth:  1920,
		ScreenHeight: 1080,
		DensityDPI:   160,
		Locale:       "en-US",
		FontScale:    1.0,
		Keyboard:     KeyboardNone,
		UIMode:       UIModeDay,
	}
}

// Portrait returns the default configuration rotated to portrait
// (1080x1920), the `wm size 1080x1920` state from the artifact appendix.
func Portrait() Configuration {
	c := Default()
	return c.Rotated()
}

// Rotated returns a copy with width/height swapped and the orientation
// qualifier updated accordingly.
func (c Configuration) Rotated() Configuration {
	c.ScreenWidth, c.ScreenHeight = c.ScreenHeight, c.ScreenWidth
	if c.ScreenWidth >= c.ScreenHeight {
		c.Orientation = OrientationLandscape
	} else {
		c.Orientation = OrientationPortrait
	}
	return c
}

// Resized returns a copy with the given screen size, recomputing the
// orientation qualifier. It models `adb shell wm size WxH`.
func (c Configuration) Resized(w, h int) Configuration {
	c.ScreenWidth, c.ScreenHeight = w, h
	if w >= h {
		c.Orientation = OrientationLandscape
	} else {
		c.Orientation = OrientationPortrait
	}
	return c
}

// WithLocale returns a copy with the locale switched.
func (c Configuration) WithLocale(tag string) Configuration {
	c.Locale = tag
	return c
}

// WithFontScale returns a copy with the font scale changed.
func (c Configuration) WithFontScale(s float64) Configuration {
	c.FontScale = s
	return c
}

// WithKeyboard returns a copy with the keyboard qualifier changed.
func (c Configuration) WithKeyboard(k Keyboard) Configuration {
	c.Keyboard = k
	return c
}

// WithUIMode returns a copy with the day/night mode changed.
func (c Configuration) WithUIMode(m UIMode) Configuration {
	c.UIMode = m
	return c
}

// Diff returns the mask of dimensions on which c and other differ,
// mirroring Configuration.diff on Android.
func (c Configuration) Diff(other Configuration) Change {
	var mask Change
	if c.Orientation != other.Orientation {
		mask |= ChangeOrientation
	}
	if c.ScreenWidth != other.ScreenWidth || c.ScreenHeight != other.ScreenHeight {
		mask |= ChangeScreenSize
	}
	if c.DensityDPI != other.DensityDPI {
		mask |= ChangeDensity
	}
	if c.Locale != other.Locale {
		mask |= ChangeLocale
	}
	if c.FontScale != other.FontScale {
		mask |= ChangeFontScale
	}
	if c.Keyboard != other.Keyboard {
		mask |= ChangeKeyboard
	}
	if c.UIMode != other.UIMode {
		mask |= ChangeUIMode
	}
	return mask
}

// Equal reports whether the two configurations are identical.
func (c Configuration) Equal(other Configuration) bool {
	return c.Diff(other) == None
}

func (c Configuration) String() string {
	return fmt.Sprintf("%s %dx%d %ddpi %s fs=%.2f %s %s",
		c.Orientation, c.ScreenWidth, c.ScreenHeight, c.DensityDPI,
		c.Locale, c.FontScale, c.Keyboard, c.UIMode)
}

// HandledBy reports whether an activity that declared the given
// android:configChanges mask handles this change itself (i.e. the stock
// system would NOT restart it). A change is handled only if every changed
// dimension is declared.
func (c Change) HandledBy(declared Change) bool {
	return c&^declared == None
}
