// Package appset models the two evaluation app populations:
//
//   - the 27 runnable apps from the TP-37 set with known runtime-change
//     issues (Table 3), and
//   - the Google Play top-100 apps (Table 5).
//
// Each Model captures where the app keeps the user-visible state its
// table row describes — in a stock-persisted widget, in rich widget
// attributes stock Android drops on restart, behind an in-flight
// asynchronous task, in app-private fields with or without
// onSaveInstanceState, or behind a declared configChanges handler. That
// single classification reproduces the table verdicts: stock Android
// loses exactly the rich/async/unsaved state, and RCHDroid recovers
// everything except the unsaved app-private fields (Table 3: 25/27,
// Table 5: 59/63).
package appset

import (
	"fmt"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/bundle"
	"rchdroid/internal/config"
	"rchdroid/internal/resources"
	"rchdroid/internal/sim"
	"rchdroid/internal/view"
)

// StateKind identifies the widget (or non-widget) carrying the app's
// interesting state.
type StateKind uint8

// State kinds.
const (
	// KindNone models apps with no state worth preserving.
	KindNone StateKind = iota
	// KindStockInput keeps state in an EditText, which stock Android
	// persists automatically — no issue even on restart.
	KindStockInput
	// KindTextInput keeps typed text in a custom input widget that stock
	// Android does not persist (the "text box" / "login page" rows).
	KindTextInput
	// KindListSelection keeps a selection in a list ("selection list").
	KindListSelection
	// KindScroll keeps a scroll offset ("scroll location").
	KindScroll
	// KindSeekBar keeps a slider value ("zoom bar", "volume bar").
	KindSeekBar
	// KindStatusText keeps programmatic status text ("timer state",
	// "report page", "alarm state", …).
	KindStatusText
	// KindAsyncImages has an in-flight AsyncTask updating images when the
	// change hits — the crash scenario.
	KindAsyncImages
	// KindExtras keeps state only in activity fields; pair with
	// SavedByApp to decide whether onSaveInstanceState persists it.
	KindExtras
	// KindServiceState runs a background service the activity's onDestroy
	// stops — the BlueNET bug: a restart silently turns the server off.
	KindServiceState
)

func (k StateKind) String() string {
	switch k {
	case KindStockInput:
		return "stock-input"
	case KindTextInput:
		return "text-input"
	case KindListSelection:
		return "list-selection"
	case KindScroll:
		return "scroll"
	case KindSeekBar:
		return "seekbar"
	case KindStatusText:
		return "status-text"
	case KindAsyncImages:
		return "async-images"
	case KindExtras:
		return "extras"
	case KindServiceState:
		return "service-state"
	default:
		return "none"
	}
}

// Widget ids used by generated apps.
const (
	stateWidgetID     view.ID = 10
	secondaryWidgetID view.ID = 11
	rootID            view.ID = 1
	fillerIDBase      view.ID = 1000
	imageIDBase       view.ID = 2000
)

// Sentinel state values the scenarios plant and verify.
const (
	plantedSecondary = "second field"
	plantedText      = "user-input-42"
	plantedPosition  = 2
	plantedScroll    = 360
	plantedProgress  = 55
	plantedExtra     = int64(1234)
)

// Model describes one app of an evaluation set.
type Model struct {
	// Index is the 1-based row number in the paper's table.
	Index int
	// Name and Downloads come straight from the table.
	Name      string
	Downloads string
	// Issue is the table's problem description ("" when none).
	Issue string
	// Kind locates the interesting state.
	Kind StateKind
	// SavedByApp marks apps that implement onSaveInstanceState for their
	// extras (only meaningful with KindExtras).
	SavedByApp bool
	// Declared marks apps that declare android:configChanges and handle
	// changes themselves.
	Declared bool

	// Workload parameters (deterministic per app; see materialize).
	Views        int
	Images       int
	ExtraMemMB   int
	CreateCostMS int
	ResumeCostMS int
}

// HasIssue reports whether stock Android's restart loses the app's state
// (the table's Yes/No column).
func (m Model) HasIssue() bool {
	if m.Declared {
		return false
	}
	switch m.Kind {
	case KindNone, KindStockInput:
		return false
	case KindExtras:
		return !m.SavedByApp
	default:
		// Rich-view, async and service state all break under a restart.
		return true
	}
}

// FixedByRCHDroid reports whether RCHDroid resolves the issue (the
// Table 3 ✓/✗ column): everything except app-private state the app never
// saves.
func (m Model) FixedByRCHDroid() bool {
	if !m.HasIssue() {
		return false
	}
	return m.Kind != KindExtras
}

func (m Model) String() string {
	return fmt.Sprintf("#%d %s (%s, %v)", m.Index, m.Name, m.Downloads, m.Kind)
}

// materialize fills the workload parameters deterministically from the
// app's index so runs are reproducible. Ranges are calibrated per set:
// the TP-27 apps are small utilities; the top-100 apps are heavyweights.
func (m *Model) materialize(heavy bool) {
	rng := sim.NewRNG(uint64(m.Index)*2654435761 + 97)
	if heavy {
		m.Views = 40 + rng.Intn(33)         // avg ≈ 56
		m.Images = 9 + rng.Intn(6)          // avg ≈ 11.5
		m.ExtraMemMB = 92 + rng.Intn(41)    // avg ≈ 112
		m.CreateCostMS = 28 + rng.Intn(21)  // avg ≈ 38
		m.ResumeCostMS = 151 + rng.Intn(21) // avg ≈ 161
	} else {
		m.Views = 8 + rng.Intn(17)          // avg ≈ 16
		m.Images = 2 + rng.Intn(4)          // avg ≈ 3.5
		m.ExtraMemMB = 2 + rng.Intn(5)      // avg ≈ 4
		m.CreateCostMS = 5 + rng.Intn(11)   // avg ≈ 10
		m.ResumeCostMS = 125 + rng.Intn(21) // avg ≈ 135
	}
}

// Build generates the runnable app for the model.
func (m Model) Build() *app.App {
	res := resources.NewTable()
	layout := func() *view.Spec {
		children := []*view.Spec{}
		switch m.Kind {
		case KindStockInput:
			children = append(children, view.Edit(stateWidgetID, ""))
		case KindTextInput:
			children = append(children, &view.Spec{Type: "CustomTextView", ID: stateWidgetID})
		case KindListSelection:
			children = append(children, &view.Spec{
				Type: "ListView", ID: stateWidgetID,
				Items: []string{"alpha", "bravo", "charlie", "delta", "echo"},
			})
		case KindScroll:
			children = append(children, &view.Spec{
				Type: "ScrollView", ID: stateWidgetID,
				Items: []string{"page1", "page2", "page3"},
			})
		case KindSeekBar:
			children = append(children, &view.Spec{Type: "SeekBar", ID: stateWidgetID, Max: 100})
		case KindStatusText:
			children = append(children, view.Text(stateWidgetID, "idle"))
		case KindExtras:
			// The extras are mirrored into an anonymous label the state
			// machinery cannot save (no view id).
			children = append(children, view.Text(view.NoID, "from-extras"))
		case KindServiceState:
			children = append(children, view.Text(stateWidgetID, "server: stopped"))
		}
		// Every app also carries a stock-persisted input; its survival in
		// BOTH modes is the negative control of the scans.
		children = append(children, view.Edit(secondaryWidgetID, ""))
		for i := 0; i < m.Images; i++ {
			children = append(children, view.Img(imageIDBase+view.ID(i), "drawable/img"))
		}
		// Filler brings the tree to the target size (the state widget,
		// images and root are part of the count).
		used := len(children) + 1
		for i := used; i < m.Views; i++ {
			children = append(children, view.Text(fillerIDBase+view.ID(i), "filler"))
		}
		return view.Linear(rootID, children...)
	}
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationLandscape}, layout())
	res.Put("layout/main", resources.Qualifiers{Orientation: config.OrientationPortrait}, layout())

	cls := &app.ActivityClass{
		Name:            "MainActivity",
		ExtraCreateCost: time.Duration(m.CreateCostMS) * time.Millisecond,
		ExtraResumeCost: time.Duration(m.ResumeCostMS) * time.Millisecond,
	}
	if m.Declared {
		cls.DeclaredChanges = config.ChangeOrientation | config.ChangeScreenSize |
			config.ChangeLocale | config.ChangeKeyboard | config.ChangeUIMode |
			config.ChangeFontScale | config.ChangeDensity
		cls.Callbacks.OnConfigurationChanged = func(a *app.Activity, c config.Configuration) {}
	}
	cls.Callbacks.OnCreate = func(a *app.Activity, saved *bundle.Bundle) {
		a.SetContentView("layout/main")
	}
	if m.Kind == KindServiceState {
		server := &app.ServiceClass{Name: "server"}
		serviceRegistry[m.Name] = server
		// The developer stops the server in onDestroy, assuming the
		// activity only dies when the user leaves — the BlueNET bug. A
		// restart therefore silently turns the server off; RCHDroid never
		// destroys the instance, so the server keeps running.
		cls.Callbacks.OnDestroy = func(a *app.Activity) {
			a.Process().StopService(server.Name)
		}
		cls.Callbacks.OnResume = func(a *app.Activity) {
			if tv, ok := a.FindViewByID(stateWidgetID).(*view.TextView); ok {
				if a.Process().ServiceRunning(server.Name) {
					tv.SetText("server: running")
				} else {
					tv.SetText("server: stopped")
				}
			}
		}
	}
	if m.Kind == KindExtras && m.SavedByApp {
		cls.Callbacks.OnSaveInstanceState = func(a *app.Activity, out *bundle.Bundle) {
			if v, ok := a.Extra("appstate").(int64); ok {
				out.PutInt("appstate", v)
			}
		}
		cls.Callbacks.OnRestoreInstanceState = func(a *app.Activity, saved *bundle.Bundle) {
			if saved != nil && saved.Has("appstate") {
				a.PutExtra("appstate", saved.GetInt("appstate", 0))
			}
		}
	}
	return &app.App{
		Name:           m.Name,
		Resources:      res,
		Main:           cls,
		ExtraBaseBytes: int64(m.ExtraMemMB) << 20,
	}
}

// PlantState performs the user interaction that creates the state the
// table row describes (typing, selecting, scrolling, …). It must run
// before the runtime change. asyncDelay sizes the in-flight task for
// KindAsyncImages.
func (m Model) PlantState(proc *app.Process, asyncDelay time.Duration) {
	fg := proc.Thread().ForegroundActivity()
	if fg == nil {
		return
	}
	proc.PostApp("plantState", time.Millisecond, func() {
		widget := fg.FindViewByID(stateWidgetID)
		switch m.Kind {
		case KindStockInput:
			if w, ok := widget.(*view.EditText); ok {
				w.Type(plantedText)
			}
		case KindTextInput:
			if w, ok := widget.(*view.CustomTextView); ok {
				w.SetText(plantedText)
			}
		case KindListSelection:
			if w, ok := widget.(*view.ListView); ok {
				w.PositionSelector(plantedPosition)
			}
		case KindScroll:
			if w, ok := widget.(*view.ScrollView); ok {
				w.ScrollTo(plantedScroll)
			}
		case KindSeekBar:
			if w, ok := widget.(*view.SeekBar); ok {
				w.SetProgress(plantedProgress)
			}
		case KindStatusText:
			if w, ok := widget.(*view.TextView); ok {
				w.SetText(plantedText)
			}
		case KindAsyncImages:
			imgs := collectImages(fg)
			fg.StartAsyncTask("refresh", asyncDelay, func() {
				for _, iv := range imgs {
					iv.SetDrawable("drawable/fresh")
				}
			})
		case KindExtras:
			fg.PutExtra("appstate", plantedExtra)
		case KindServiceState:
			if cls := serviceRegistry[m.Name]; cls != nil {
				proc.StartService(cls)
				if w, ok := fg.FindViewByID(stateWidgetID).(*view.TextView); ok {
					w.SetText("server: running")
				}
			}
		}
		if w, ok := fg.FindViewByID(secondaryWidgetID).(*view.EditText); ok {
			w.Type(plantedSecondary)
		}
	})
}

func collectImages(a *app.Activity) []*view.ImageView {
	var out []*view.ImageView
	view.Walk(a.Decor(), func(v view.View) bool {
		if iv, ok := v.(*view.ImageView); ok {
			out = append(out, iv)
		}
		return true
	})
	return out
}

// VerifyState checks whether the planted state survived the runtime
// change on the current foreground activity. A crashed process never
// verifies.
func (m Model) VerifyState(proc *app.Process) bool {
	if proc.Crashed() {
		return false
	}
	fg := proc.Thread().ForegroundActivity()
	if fg == nil {
		return false
	}
	widget := fg.FindViewByID(stateWidgetID)
	switch m.Kind {
	case KindNone:
		return true
	case KindStockInput:
		w, ok := widget.(*view.EditText)
		return ok && w.Text() == plantedText
	case KindTextInput:
		w, ok := widget.(*view.CustomTextView)
		return ok && w.Text() == plantedText
	case KindListSelection:
		w, ok := widget.(*view.ListView)
		return ok && w.SelectorPosition() == plantedPosition
	case KindScroll:
		w, ok := widget.(*view.ScrollView)
		return ok && w.ScrollOffset() == plantedScroll
	case KindSeekBar:
		w, ok := widget.(*view.SeekBar)
		return ok && w.Progress() == plantedProgress
	case KindStatusText:
		w, ok := widget.(*view.TextView)
		return ok && w.Text() == plantedText
	case KindAsyncImages:
		for _, iv := range collectImages(fg) {
			if iv.Drawable() != "drawable/fresh" {
				return false
			}
		}
		return true
	case KindExtras:
		v, ok := fg.Extra("appstate").(int64)
		return ok && v == plantedExtra
	case KindServiceState:
		return proc.ServiceRunning("server")
	default:
		return false
	}
}

// VerifySecondary checks the negative control: the stock-persisted
// EditText every generated app carries must survive the change under BOTH
// handling schemes. A false here indicates a handling bug rather than a
// table verdict.
func (m Model) VerifySecondary(proc *app.Process) bool {
	if proc.Crashed() {
		return false
	}
	fg := proc.Thread().ForegroundActivity()
	if fg == nil {
		return false
	}
	w, ok := fg.FindViewByID(secondaryWidgetID).(*view.EditText)
	return ok && w.Text() == plantedSecondary
}

// serviceRegistry maps app names to the service class their Build wired
// in, so PlantState can start the same instance the callbacks reference.
var serviceRegistry = map[string]*app.ServiceClass{}
