package appset

import (
	"testing"
	"time"

	"rchdroid/internal/app"
	"rchdroid/internal/atms"
	"rchdroid/internal/config"
	"rchdroid/internal/core"
	"rchdroid/internal/costmodel"
	"rchdroid/internal/sim"
	"rchdroid/internal/view"
)

func TestTP27Population(t *testing.T) {
	set := TP27()
	if len(set) != 27 {
		t.Fatalf("len = %d", len(set))
	}
	issues, fixed := 0, 0
	for _, m := range set {
		if !m.HasIssue() {
			t.Errorf("%v: every Table 3 app has an issue", m)
		} else {
			issues++
		}
		if m.FixedByRCHDroid() {
			fixed++
		}
		if m.Views <= 0 || m.ExtraMemMB < 0 || m.ResumeCostMS <= 0 {
			t.Errorf("%v: parameters not materialized", m)
		}
	}
	if issues != 27 || fixed != 25 {
		t.Fatalf("issues=%d fixed=%d, want 27/25", issues, fixed)
	}
	// The two unfixable rows are #9 and #10.
	if set[8].FixedByRCHDroid() || set[9].FixedByRCHDroid() {
		t.Fatal("#9/#10 must be unfixable")
	}
}

func TestTop100Population(t *testing.T) {
	set := Top100()
	if len(set) != 100 {
		t.Fatalf("len = %d", len(set))
	}
	issues, fixed, declared, noIssueRestart := 0, 0, 0, 0
	for _, m := range set {
		if m.HasIssue() {
			issues++
			if m.FixedByRCHDroid() {
				fixed++
			}
		} else if m.Declared {
			declared++
		} else {
			noIssueRestart++
		}
	}
	if issues != 63 {
		t.Fatalf("issues = %d, want 63", issues)
	}
	if fixed != 59 {
		t.Fatalf("fixed = %d, want 59", fixed)
	}
	if declared != 26 || noIssueRestart != 11 {
		t.Fatalf("declared=%d restartNoIssue=%d, want 26/11", declared, noIssueRestart)
	}
	for _, idx := range []int{2, 57, 66, 70} {
		m := set[idx-1]
		if !m.HasIssue() || m.FixedByRCHDroid() {
			t.Errorf("#%d %s must be an unfixable issue", idx, m.Name)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	a, b := TP27(), TP27()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between calls", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []StateKind{KindNone, KindStockInput, KindTextInput, KindListSelection,
		KindScroll, KindSeekBar, KindStatusText, KindAsyncImages, KindExtras}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d string %q empty or duplicated", k, s)
		}
		seen[s] = true
	}
}

// runScenario plants the model's state, applies one rotation and reports
// whether the state survived.
func runScenario(t *testing.T, m Model, rch bool) bool {
	t.Helper()
	sched := sim.NewScheduler()
	model := costmodel.Default()
	sys := atms.New(sched, model)
	proc := app.NewProcess(sched, model, m.Build())
	if rch {
		core.Install(sys, proc, core.DefaultOptions())
	}
	sys.LaunchApp(proc)
	sched.Advance(2 * time.Second)
	m.PlantState(proc, 400*time.Millisecond)
	sched.Advance(100 * time.Millisecond)
	sys.PushConfiguration(config.Portrait())
	sched.Advance(3 * time.Second)
	return m.VerifyState(proc)
}

func TestScenarioOutcomesMatchTableVerdicts(t *testing.T) {
	// Every kind appears in TP27 ∪ Top100; exercise one representative
	// per kind against both modes and compare with the declared verdict.
	byKind := map[StateKind]Model{}
	for _, m := range append(TP27(), Top100()...) {
		if _, ok := byKind[m.Kind]; !ok {
			byKind[m.Kind] = m
		}
	}
	for kind, m := range byKind {
		stockOK := runScenario(t, m, false)
		rchOK := runScenario(t, m, true)
		wantStock := !m.HasIssue()
		wantRCH := !m.HasIssue() || m.FixedByRCHDroid()
		if stockOK != wantStock {
			t.Errorf("%v (%v): stock preserved=%v, table says %v", m, kind, stockOK, wantStock)
		}
		if rchOK != wantRCH {
			t.Errorf("%v (%v): rchdroid preserved=%v, table says %v", m, kind, rchOK, wantRCH)
		}
	}
}

func TestFullTP27Verdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("full population scan")
	}
	fixed := 0
	for _, m := range TP27() {
		if runScenario(t, m, false) {
			t.Errorf("%v: no issue on stock, expected one", m)
		}
		if runScenario(t, m, true) {
			fixed++
		}
	}
	if fixed != 25 {
		t.Fatalf("RCHDroid fixed %d/27, want 25", fixed)
	}
}

func TestBuildTreeSizesMatchModel(t *testing.T) {
	for _, m := range []Model{TP27()[0], Top100()[0]} {
		sched := sim.NewScheduler()
		proc := app.NewProcess(sched, costmodel.Default(), m.Build())
		sys := atms.New(sched, costmodel.Default())
		sys.LaunchApp(proc)
		sched.Advance(time.Second)
		fg := proc.Thread().ForegroundActivity()
		if fg == nil {
			t.Fatalf("%v: no foreground", m)
		}
		if got := fg.ViewCount(); got != m.Views {
			t.Errorf("%v: tree has %d views, want %d", m, got, m.Views)
		}
	}
}

func TestSecondaryInputSurvivesBothModes(t *testing.T) {
	// The negative control: the stock-persisted EditText survives every
	// handling scheme on every non-declared app.
	for _, m := range TP27() {
		for _, rch := range []bool{false, true} {
			sched := sim.NewScheduler()
			model := costmodel.Default()
			sys := atms.New(sched, model)
			proc := app.NewProcess(sched, model, m.Build())
			if rch {
				core.Install(sys, proc, core.DefaultOptions())
			}
			sys.LaunchApp(proc)
			sched.Advance(2 * time.Second)
			m.PlantState(proc, 400*time.Millisecond)
			sched.Advance(100 * time.Millisecond)
			sys.PushConfiguration(config.Portrait())
			sched.Advance(3 * time.Second)
			if m.Kind == KindAsyncImages && !rch {
				continue // that app crashes on stock by design
			}
			if !m.VerifySecondary(proc) {
				t.Errorf("%v (rch=%v): secondary input lost", m, rch)
			}
		}
	}
}

func TestFullTop100Verdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("full population scan")
	}
	issues, fixed := 0, 0
	for _, m := range Top100() {
		stockOK := runScenario(t, m, false)
		rchOK := runScenario(t, m, true)
		if !stockOK {
			issues++
			if rchOK {
				fixed++
			}
		}
		if stockOK != !m.HasIssue() {
			t.Errorf("%v: stock verdict %v, table says issue=%v", m, stockOK, m.HasIssue())
		}
	}
	if issues != 63 || fixed != 59 {
		t.Fatalf("issues=%d fixed=%d, want 63/59", issues, fixed)
	}
}

func TestAllGeneratedLayoutsValidate(t *testing.T) {
	// Every app model's layout must pass the view linter for both
	// orientations — duplicate ids would silently corrupt the essence
	// mapping.
	for _, m := range append(TP27(), Top100()...) {
		a := m.Build()
		for _, cfg := range []config.Configuration{config.Default(), config.Portrait()} {
			specAny, ok := a.Resources.Resolve("layout/main", cfg)
			if !ok {
				t.Fatalf("%v: no layout for %v", m, cfg.Orientation)
			}
			if errs := view.ValidateSpec(specAny.(*view.Spec)); len(errs) != 0 {
				t.Errorf("%v (%v): %v", m, cfg.Orientation, errs)
			}
		}
	}
}
