package appset

// Top100 returns the Google Play top-100 population of Table 5. 63 apps
// exhibit a runtime-change issue under the default restart-based
// handling; of the 37 without issues, 26 declare android:configChanges
// and handle changes themselves while 11 rely on the restart but keep
// their state in stock-persisted widgets. RCHDroid resolves 59 of the 63
// issues; apps #2 (Filto), #57 (HaircutPrank), #66 (CastForChrome) and
// #70 (KingJamesBible) keep the state in unsaved activity fields and
// cannot be helped by any system-level scheme (§6).
//
// Row 100 (Wish) is listed "Yes / No" in the paper's table; the headline
// count (63 issues) is only consistent when Wish is counted as
// issue-free, so it is modelled here as a stock-persisted-input app.
func Top100() []Model {
	type row struct {
		name, downloads, issue string
		kind                   StateKind
		declared               bool
	}
	rows := []row{
		{"AmazonPrimeVideo", "100M+", "State loss (text box)", KindTextInput, false},           // 1
		{"Filto", "5M+", "State loss (selection list)", KindExtras, false},                     // 2 ✗
		{"TikTok", "1B+", "State loss (text box)", KindTextInput, false},                       // 3
		{"Instagram", "1B+", "", KindNone, true},                                               // 4
		{"WhatsApp", "5B+", "", KindNone, true},                                                // 5
		{"CashApp", "50M+", "", KindStockInput, false},                                         // 6
		{"DeepCleaner", "10M+", "", KindStockInput, false},                                     // 7
		{"ZOOM", "500M+", "", KindNone, true},                                                  // 8
		{"Disney+", "100M+", "State loss (scroll location)", KindScroll, false},                // 9
		{"Snapchat", "1B+", "State loss (login page)", KindTextInput, false},                   // 10
		{"AmazonShopping", "500M+", "", KindNone, true},                                        // 11
		{"Telegram", "1B+", "State loss (text box)", KindTextInput, false},                     // 12
		{"TorBrowser", "10M+", "", KindNone, true},                                             // 13
		{"MaxCleaner", "5M+", "", KindStockInput, false},                                       // 14
		{"Messenger", "5B+", "", KindNone, true},                                               // 15
		{"PeacockTV", "10M+", "", KindNone, true},                                              // 16
		{"WalmartShopping", "50M+", "State loss (scroll location)", KindScroll, false},         // 17
		{"McDonald's", "10M+", "", KindStockInput, false},                                      // 18
		{"Facebook", "5B+", "State loss (selection list)", KindListSelection, false},           // 19
		{"NewsBreak", "50M+", "State loss (text box)", KindTextInput, false},                   // 20
		{"CapCut", "100M+", "", KindNone, true},                                                // 21
		{"QR&BarcodeScanner", "100M+", "State loss (zoom bar)", KindSeekBar, false},            // 22
		{"MicrosoftTeams", "100M+", "State loss (text box)", KindTextInput, false},             // 23
		{"Indeed", "100M+", "", KindStockInput, false},                                         // 24
		{"Tubi", "100M+", "", KindNone, true},                                                  // 25
		{"SHEIN", "100M+", "State loss (selection list)", KindListSelection, false},            // 26
		{"TextNow", "50M+", "State loss (login page)", KindTextInput, false},                   // 27
		{"Twitter", "1B+", "State loss (text box)", KindTextInput, false},                      // 28
		{"Wonder", "1M+", "", KindStockInput, false},                                           // 29
		{"Netflix", "1B+", "State loss (FAQ list)", KindListSelection, false},                  // 30
		{"AllDocumentReader", "50M+", "State loss (selection list)", KindListSelection, false}, // 31
		{"Roku", "50M+", "", KindNone, true},                                                   // 32
		{"PlutoTV", "100M+", "", KindNone, true},                                               // 33
		{"DoorDash", "10M+", "State loss (selection list)", KindListSelection, false},          // 34
		{"Uber", "500M+", "", KindNone, true},                                                  // 35
		{"Discord", "100M+", "State loss (register page)", KindTextInput, false},               // 36
		{"Audible", "100M+", "State loss (text box)", KindTextInput, false},                    // 37
		{"Ticketmaster", "10M+", "State loss (selection list)", KindListSelection, false},      // 38
		{"Life360", "100M+", "", KindNone, true},                                               // 39
		{"Hulu", "50M+", "State loss (text box)", KindTextInput, false},                        // 40
		{"Orbot", "10M+", "State loss (selection list)", KindListSelection, false},             // 41
		{"MovetoiOS", "100M+", "State loss (scroll location)", KindScroll, false},              // 42
		{"DailyDiary", "10M+", "State loss (text box)", KindTextInput, false},                  // 43
		{"Yoshion", "1M+", "State loss (selection list)", KindListSelection, false},            // 44
		{"MSAuthenticator", "50M+", "State loss (text box)", KindTextInput, false},             // 45
		{"PowerCleaner", "10M+", "State loss (report page)", KindStatusText, false},            // 46
		{"SamsungSmartSwitch", "100M+", "", KindNone, true},                                    // 47
		{"Alibaba.com", "100M+", "State loss (selection list)", KindListSelection, false},      // 48
		{"Reddit", "100M+", "", KindNone, true},                                                // 49
		{"Paramount+", "10M+", "", KindNone, true},                                             // 50
		{"Lyft", "50M+", "", KindNone, true},                                                   // 51
		{"Pinterest", "500M+", "State loss (text box)", KindTextInput, false},                  // 52
		{"OfferUp", "50M+", "", KindNone, true},                                                // 53
		{"BeReal", "5M+", "State loss (text box)", KindTextInput, false},                       // 54
		{"UberEats", "100M+", "State loss (text box)", KindTextInput, false},                   // 55
		{"FetchRewards", "10M+", "State loss (scroll location)", KindScroll, false},            // 56
		{"HaircutPrank", "1M+", "State loss (volume bar)", KindExtras, false},                  // 57 ✗
		{"MyBath&BodyWorks", "1M+", "State loss (scroll location)", KindScroll, false},         // 58
		{"Wholee", "5M+", "State loss (selection list)", KindListSelection, false},             // 59
		{"UltraCleaner", "1M+", "State loss (file number)", KindStatusText, false},             // 60
		{"eBay", "100M+", "", KindNone, true},                                                  // 61
		{"FacebookLite", "1B+", "State loss (text box)", KindTextInput, false},                 // 62
		{"Adidas", "10M+", "State loss (product list)", KindListSelection, false},              // 63
		{"Duolingo", "100M+", "", KindNone, true},                                              // 64
		{"BravoCleaner", "10M+", "State loss (selection list)", KindListSelection, false},      // 65
		{"CastForChrome", "10M+", "State loss (selection list)", KindExtras, false},            // 66 ✗
		{"Waze", "100M+", "", KindNone, true},                                                  // 67
		{"UltraSurf", "10M+", "State loss (selection list)", KindListSelection, false},         // 68
		{"PetDiary", "500K+", "State loss (scroll location)", KindScroll, false},               // 69
		{"KingJamesBible", "50M+", "State loss (selection list)", KindExtras, false},           // 70 ✗
		{"EmailHome", "5M+", "", KindStockInput, false},                                        // 71
		{"CapitalOne", "10M+", "", KindStockInput, false},                                      // 72
		{"Plex", "10M+", "", KindStockInput, false},                                            // 73
		{"DoordashDasher", "10M+", "State loss (text box)", KindTextInput, false},              // 74
		{"Shop", "10M+", "", KindStockInput, false},                                            // 75
		{"Expedia", "10M+", "State loss (text box)", KindTextInput, false},                     // 76
		{"ESPN", "50M+", "State loss (scroll location)", KindScroll, false},                    // 77
		{"Pandora", "100M+", "", KindNone, true},                                               // 78
		{"Picsart", "500M+", "State loss (scroll location)", KindScroll, false},                // 79
		{"FileRecovery", "10M+", "State loss (report page)", KindStatusText, false},            // 80
		{"Callapp", "100M+", "State loss (selection list)", KindListSelection, false},          // 81
		{"Tinder", "100M+", "State loss (text box)", KindTextInput, false},                     // 82
		{"Etsy", "10M+", "State loss (text box)", KindTextInput, false},                        // 83
		{"SiriusXM", "10M+", "", KindNone, true},                                               // 84
		{"AliExpress", "500M+", "State loss (scroll location)", KindScroll, false},             // 85
		{"NFL", "100M+", "", KindNone, true},                                                   // 86
		{"Adobe", "500M+", "State loss (login page)", KindTextInput, false},                    // 87
		{"KJVBible", "100K+", "State loss (timer state)", KindStatusText, false},               // 88
		{"HomeDepot", "10M+", "State loss (selection list)", KindListSelection, false},         // 89
		{"TacoBell", "10M+", "State loss (location page)", KindStatusText, false},              // 90
		{"UberDriver", "100M+", "State loss (login page)", KindTextInput, false},               // 91
		{"Booking.com", "500M+", "State loss (text box)", KindTextInput, false},                // 92
		{"CCFileManager", "5M+", "State loss (selection list)", KindListSelection, false},      // 93
		{"SpeedBooster", "5M+", "State loss (report page)", KindStatusText, false},             // 94
		{"Firefox", "100M+", "", KindNone, true},                                               // 95
		{"Twitch", "100M+", "", KindNone, true},                                                // 96
		{"Target", "10M+", "State loss (check box)", KindListSelection, false},                 // 97
		{"SmartBooster", "10M+", "State loss (report page)", KindStatusText, false},            // 98
		{"Bumble", "10M+", "State loss (selection list)", KindListSelection, false},            // 99
		{"Wish", "500M+", "", KindStockInput, false},                                           // 100
	}
	out := make([]Model, len(rows))
	for i, r := range rows {
		out[i] = Model{
			Index:     i + 1,
			Name:      r.name,
			Downloads: r.downloads,
			Issue:     r.issue,
			Kind:      r.kind,
			Declared:  r.declared,
		}
		out[i].materialize(true)
	}
	return out
}
