package appset

// TP27 returns the 27 apps of Table 3: the subset of the TP-37 app-set
// (KREfinder's study population) that runs on the evaluation board, each
// with the runtime-change issue its row describes. Apps #9 and #10 keep
// user state in activity fields without implementing onSaveInstanceState,
// so neither stock Android nor RCHDroid can preserve it (the two ✗ rows).
func TP27() []Model {
	rows := []Model{
		{Index: 1, Name: "AlarmClockPlus", Downloads: "5M+", Issue: "The alarm state is lost after restart", Kind: KindStatusText},
		{Index: 2, Name: "AlarmKlock", Downloads: "500K+", Issue: "The alarm time change is gone after restart", Kind: KindStatusText},
		{Index: 3, Name: "AndroidToken", Downloads: "5M+", Issue: "The selected token is lost after restart", Kind: KindListSelection},
		{Index: 4, Name: "BlueNET", Downloads: "500K+", Issue: "The server is unexpectedly turned off after restart", Kind: KindServiceState},
		{Index: 5, Name: "BrightnessProfile", Downloads: "5M+", Issue: "Brightness level is lost after restart", Kind: KindSeekBar},
		{Index: 6, Name: "BTHFPowerSave", Downloads: "500K+", Issue: "State changes are lost after restart", Kind: KindStatusText},
		{Index: 7, Name: "CalenMob", Downloads: "10K+", Issue: "The working date resets to current date after restart", Kind: KindListSelection},
		{Index: 8, Name: "DateSlider", Downloads: "10K+", Issue: "The chosen date is lost after restart", Kind: KindSeekBar},
		{Index: 9, Name: "DiskDiggerPro", Downloads: "100K+", Issue: "The percentage set by the user is lost after restart", Kind: KindExtras},
		{Index: 10, Name: "Dock4Droid", Downloads: "10K+", Issue: "The last-added app is missing after restart", Kind: KindExtras},
		{Index: 11, Name: "DrWebAntiVirus", Downloads: "100M+", Issue: "The check box setting is lost after restart", Kind: KindListSelection},
		{Index: 12, Name: "Droidstack", Downloads: "100K+", Issue: "The title is not preserved after restart", Kind: KindStatusText},
		{Index: 13, Name: "FoxFi", Downloads: "10M+", Issue: "The entered email is lost after restart", Kind: KindTextInput},
		{Index: 14, Name: "MOBILedit", Downloads: "1K+", Issue: "The WiFi settings are not retained after restart", Kind: KindListSelection},
		{Index: 15, Name: "OIFileManager", Downloads: "5M+", Issue: "The last-opened path is lost after restart", Kind: KindStatusText},
		{Index: 16, Name: "OpenSudoku", Downloads: "1M+", Issue: "User-filled numbers are lost after restart", Kind: KindTextInput},
		{Index: 17, Name: "OpenWordSearch", Downloads: "1M+", Issue: "The word filled by user is lost after restarts", Kind: KindTextInput},
		{Index: 18, Name: "WorkRecorder", Downloads: "5K+", Issue: "The workout start time is lost after restart", Kind: KindStatusText},
		{Index: 19, Name: "PowerToggles", Downloads: "10K+", Issue: "The notification widgets are lost after restart", Kind: KindListSelection},
		{Index: 20, Name: "PhoneCopier", Downloads: "10K+", Issue: "The email address is lost after restart", Kind: KindTextInput},
		{Index: 21, Name: "ScrambledNet", Downloads: "10K+", Issue: "The game state is lost after a restart", Kind: KindStatusText},
		{Index: 22, Name: "ScrollableNews", Downloads: "1K+", Issue: "The color selection is lost after restart", Kind: KindListSelection},
		{Index: 23, Name: "ServDroidWeb", Downloads: "1K+", Issue: "The new status is gone after restarts", Kind: KindAsyncImages},
		{Index: 24, Name: "SouveyMusicPro", Downloads: "1K+", Issue: "The settings of Metronome are lost after restart", Kind: KindSeekBar},
		{Index: 25, Name: "SSHTunnel", Downloads: "100K+", Issue: "SSH connection profile is lost upon restart", Kind: KindListSelection},
		{Index: 26, Name: "VPNConnection", Downloads: "1K+", Issue: "The IPSec ID is lost upon restart", Kind: KindTextInput},
		{Index: 27, Name: "ZircoBrowser", Downloads: "1K+", Issue: "Bookmark is lost after restart", Kind: KindStatusText},
	}
	for i := range rows {
		rows[i].materialize(false)
	}
	return rows
}
