#!/bin/sh
# scripts/bench.sh [-quick] [-out FILE] [-seeds N] [-workers N]
#
# Measures the sweep engine's sequential-vs-parallel throughput and
# writes the bench artifact (default BENCH_sweep.json at the repo
# root): seeds/sec at -workers=1 and -workers=GOMAXPROCS, the speedup,
# and per-seed p50/p95 wall times for the oracle and guarded-chaos
# sweeps. Every measurement doubles as a determinism check — the two
# merged reports are byte-compared and the bench fails on any drift.
#
#   scripts/bench.sh            # full measurement (512 seeds per mode)
#   scripts/bench.sh -quick     # CI-sized (128 seeds per mode)
set -eu
cd "$(dirname "$0")/.."

seeds=512
out=BENCH_sweep.json
workers=0
while [ $# -gt 0 ]; do
    case "$1" in
        -quick) seeds=128 ;;
        -out) shift; out="$1" ;;
        -seeds) shift; seeds="$1" ;;
        -workers) shift; workers="$1" ;;
        *) echo "bench.sh: unknown flag $1" >&2; exit 2 ;;
    esac
    shift
done

go run ./cmd/rchsweep -bench -mode=oracle,guard \
    -seeds="$seeds" -workers="$workers" -bench-out "$out"
