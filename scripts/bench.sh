#!/bin/sh
# scripts/bench.sh [-quick] [-out FILE] [-seeds N] [-workers LIST]
#
# Measures the sweep engine's worker scaling curve and writes the bench
# artifact (default BENCH_sweep.json at the repo root): seeds/sec at
# each worker count in the curve (default 1,2,4,8 plus GOMAXPROCS, with
# a forced workers=1 baseline and duplicates collapsed), the speedup
# against the baseline, and per-seed p50/p95 wall times for the oracle
# and guarded-chaos sweeps plus the boot (device spin-up) mode.
# GOMAXPROCS is recorded on every measurement, so points collected on
# differently-provisioned machines stay honest. Every point doubles as
# a determinism check — the merged report AND the canonical metrics
# dump are byte-compared against the workers=1 baseline, and the bench
# fails on any drift.
#
# Each mode is measured twice: fresh builds, and with -fork (every
# per-seed world forked from one settled pre-chaos template — curves
# with "fork": true). The stderr log records the fork speedup per mode;
# it is largest on the boot mode, whose seeds are pure world
# construction, and bounded by the chaos-to-construction ratio on the
# oracle/guard sweeps (Amdahl). Boot runs a larger seed count
# (mode:seeds syntax) because each of its seeds is microseconds.
#
#
# After the sweep curve, the replay bench (cmd/rchreplay) generates a
# seeded diurnal trace and replays it through fresh embedded fleets at
# each speed multiplier, writing BENCH_replay.json: per-op-class
# p50/p95/p99 wall latencies (boot, config flip, batched burst), shed
# rate by wire code, and breaker/guard counters per speed.
#
#   scripts/bench.sh            # full measurement (512 seeds per mode)
#   scripts/bench.sh -quick     # CI-sized (128 seeds per mode)
#   scripts/bench.sh -workers 1,4,16
set -eu
cd "$(dirname "$0")/.."

seeds=512
bootseeds=20000
out=BENCH_sweep.json
replayout=BENCH_replay.json
workers=1,2,4,8,0
replayspan=20000
replayspeeds=10,100,1000
while [ $# -gt 0 ]; do
    case "$1" in
        -quick) seeds=128; bootseeds=5000; replayspan=4000; replayspeeds=100,1000 ;;
        -out) shift; out="$1" ;;
        -replay-out) shift; replayout="$1" ;;
        -seeds) shift; seeds="$1" ;;
        -workers) shift; workers="$1" ;;
        *) echo "bench.sh: unknown flag $1" >&2; exit 2 ;;
    esac
    shift
done

go run ./cmd/rchsweep -bench -mode="oracle,guard,boot:$bootseeds" -fork \
    -seeds="$seeds" -bench-workers="$workers" -bench-out "$out"

echo "bench.sh: replay bench (span ${replayspan}ms at ${replayspeeds}x)" >&2
go run ./cmd/rchreplay -gen artifacts/bench.trace.log -seed 17 -devices 12 \
    -span-ms "$replayspan" -events-per-device 30
go run ./cmd/rchreplay -log artifacts/bench.trace.log -shards 4 \
    -speeds "$replayspeeds" -bench-out "$replayout"
