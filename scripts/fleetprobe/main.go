// Command fleetprobe is the client half of the scripts/ci.sh fleet
// stage: it drives a running rchserve over the line-delimited JSON wire
// API and asserts the robustness contract end to end against the real
// binary — boot a small fleet, storm one device with the
// panic-on-relaunch spec and require every panic to come back contained,
// provoke a deadline shed, run canary seeds, then check the merged
// counters and per-shard health. Any violated expectation exits
// non-zero with a diagnostic; the ci stage follows up with SIGTERM and
// asserts the clean drain separately.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"rchdroid/internal/obs"
	"rchdroid/internal/serve"
)

// storms is how many rotations hit the panic-on-relaunch device. The
// ci stage starts rchserve with -breaker-threshold above this so the
// stage tests containment, not quarantine (the breaker ladder has its
// own tests in internal/serve).
const storms = 6

func main() {
	addr := flag.String("addr", "", "rchserve address (host:port), e.g. from its -port-file")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "fleetprobe: -addr is required")
		os.Exit(2)
	}
	if err := probe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "fleetprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fleetprobe: fleet contract holds (%d contained panics, deadline shed, all shards serving)\n", storms)
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

func dial(addr string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

func (c *client) send(req serve.Request) error { return c.enc.Encode(req) }

func (c *client) recv() (serve.Response, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return serve.Response{}, err
	}
	var resp serve.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return serve.Response{}, fmt.Errorf("bad reply line %q: %v", line, err)
	}
	return resp, nil
}

func (c *client) call(req serve.Request) (serve.Response, error) {
	if err := c.send(req); err != nil {
		return serve.Response{}, err
	}
	return c.recv()
}

func probe(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()

	// A small resident fleet on the default oracle spec.
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("d%d", i)
		r, err := c.call(serve.Request{Op: serve.OpBoot, Device: name, Seed: uint64(i)})
		if err != nil {
			return fmt.Errorf("boot %s: %v", name, err)
		}
		if !r.OK {
			return fmt.Errorf("boot %s refused: code=%s detail=%s", name, r.Code, r.Detail)
		}
	}

	// The chaos storm: a device whose app panics (a real Go panic, not a
	// simulated crash) on every stock-routed relaunch. Each rotation must
	// come back as a contained device_panic reply on a live connection —
	// a dropped connection here means the panic escaped the shard.
	if r, err := c.call(serve.Request{Op: serve.OpBoot, Device: "storm",
		Spec: serve.SpecPanicRelaunch, Handler: serve.HandlerStock, Seed: 99}); err != nil || !r.OK {
		return fmt.Errorf("boot storm device: err=%v code=%s detail=%s", err, r.Code, r.Detail)
	}
	for i := 0; i < storms; i++ {
		r, err := c.call(serve.Request{Op: serve.OpDrive, Device: "storm", Kind: serve.KindRotate})
		if err != nil {
			return fmt.Errorf("storm rotation %d: connection died — panic escaped containment: %v", i+1, err)
		}
		if r.OK || r.Code != serve.CodeDevicePanic {
			return fmt.Errorf("storm rotation %d: want contained device_panic, got ok=%v code=%s detail=%s",
				i+1, r.OK, r.Code, r.Detail)
		}
	}

	// The storm's shard — and every other — must still serve its healthy
	// devices.
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("d%d", i)
		r, err := c.call(serve.Request{Op: serve.OpDrive, Device: name, Kind: serve.KindRotate})
		if err != nil {
			return fmt.Errorf("post-storm rotate %s: %v", name, err)
		}
		if !r.OK {
			return fmt.Errorf("post-storm rotate %s refused: code=%s detail=%s — shard did not survive the storm", name, r.Code, r.Detail)
		}
	}

	// Deadline shed: jam one shard with a wall stall from a second
	// connection, then queue a request behind it on the same device name
	// (same name → same shard). It must be shed with the explicit
	// deadline code, not served late. The stall (600ms) dwarfs the ci
	// stage's -deadline (200ms), so the queue wait is over budget by
	// construction.
	c2, err := dial(addr)
	if err != nil {
		return err
	}
	defer c2.conn.Close()
	if err := c2.send(serve.Request{Op: serve.OpDrive, Device: "z", Kind: serve.KindSleep, Millis: 600}); err != nil {
		return fmt.Errorf("send stall: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // let the stall reach the shard goroutine
	r, err := c.call(serve.Request{Op: serve.OpDrive, Device: "z", Kind: serve.KindSleep, Millis: 1})
	if err != nil {
		return fmt.Errorf("queued-behind-stall request: %v", err)
	}
	if r.OK || r.Code != serve.CodeDeadline {
		return fmt.Errorf("request queued behind a 600ms stall: want deadline shed, got ok=%v code=%s detail=%s",
			r.OK, r.Code, r.Detail)
	}
	if r, err := c2.recv(); err != nil || !r.OK {
		return fmt.Errorf("stall reply: err=%v code=%s detail=%s", err, r.Code, r.Detail)
	}

	// Canary seeds record through the sweep runners; the cmd/rchserve
	// tests assert their canonical dump byte-compares to rchsweep's, so
	// here they just have to pass.
	for _, seed := range []uint64{1, 2} {
		r, err := c.call(serve.Request{Op: serve.OpCanary, Seed: seed})
		if err != nil {
			return fmt.Errorf("canary %d: %v", seed, err)
		}
		if !r.OK {
			return fmt.Errorf("canary seed %d failed: %s %v", seed, r.Detail, r.Failures)
		}
	}

	// The merged counters must account for exactly what happened.
	stats, err := c.call(serve.Request{Op: serve.OpStats})
	if err != nil {
		return fmt.Errorf("stats: %v", err)
	}
	if !stats.OK {
		return fmt.Errorf("stats refused: code=%s detail=%s", stats.Code, stats.Detail)
	}
	snap, err := obs.DecodeSnapshot(stats.Metrics)
	if err != nil {
		return fmt.Errorf("stats metrics: %v", err)
	}
	get := func(name string) int64 {
		for _, m := range snap.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
		return -1
	}
	if n := get("serve_device_panics_total"); n != storms {
		return fmt.Errorf("serve_device_panics_total = %d, want exactly %d", n, storms)
	}
	if n := get("serve_device_respawns_total"); n != storms {
		return fmt.Errorf("serve_device_respawns_total = %d, want exactly %d (ci runs with -respawn)", n, storms)
	}
	if n := get("serve_shed_deadline_total"); n < 1 {
		return fmt.Errorf("serve_shed_deadline_total = %d, want ≥ 1", n)
	}
	if n := get("serve_requests_total"); n < storms+4+4+1 {
		return fmt.Errorf("serve_requests_total = %d, implausibly low", n)
	}

	// Health: every shard serving, the fleet still 5 devices strong
	// (d1..d4 plus the respawned storm device).
	health, err := c.call(serve.Request{Op: serve.OpHealth})
	if err != nil {
		return fmt.Errorf("health: %v", err)
	}
	if !health.OK {
		return fmt.Errorf("health not ready: code=%s detail=%s", health.Code, health.Detail)
	}
	devices := 0
	for _, sh := range health.Shards {
		if sh.State != "serving" {
			return fmt.Errorf("shard %d ended %q, want serving (storm must not quarantine under ci's breaker threshold)", sh.Shard, sh.State)
		}
		devices += sh.Devices
	}
	if devices != 5 {
		return fmt.Errorf("fleet has %d resident devices, want 5 (d1..d4 + respawned storm)", devices)
	}
	return nil
}
