#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
#
#   scripts/ci.sh            # from the repo root
#
# Stages:
#   1. gofmt         — no unformatted files
#   2. go vet        — static checks
#   3. go build      — every package compiles
#   4. go test -race — full suite, short mode, race detector on
#   5. trace guard   — 89.2 ms flip anchor with tracing disabled, and
#                      zero virtual-time drift with tracing enabled
#   6. guard idle    — same anchor with the supervision guard armed but
#                      idle: the watchdog must be tick-for-tick free
#   7. oracle sweep  — 64-seed differential RCHDroid-vs-stock run
#   8. guarded sweep — 256-seed guarded-chaos run: zero invariant
#                      violations, no quarantine/breaker decision without
#                      a preceding injected fault, and every activity
#                      either RCHDroid-equivalent or exactly
#                      stock-equivalent (never a hybrid)
#
# The oracle sweep is deliberately rerun outside -short so the
# differential harness itself is exercised even in the quick gate; a
# failure prints the exact -oracle.replay=<seed> invocation and, with
# trace-on-fail armed, writes the failing seed's Perfetto trace to
# ./artifacts/.
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> trace overhead guard"
go test ./internal/experiments -run TestTraceOverheadGuard -count=1

echo "==> guard idle anchor"
go test ./internal/experiments -run TestGuardIdleAnchor -count=1

echo "==> oracle sweep (64 seeds)"
go test ./internal/oracle -run TestTransparencyOracleSweep \
    -oracle.seeds=64 -oracle.trace-on-fail -count=1

echo "==> guarded chaos sweep (256 seeds)"
go test ./internal/oracle -run 'TestGuardedChaosSweep|TestGuardSavesRawFailures|TestGuardDeterministic' \
    -oracle.guard-seeds=256 -oracle.trace-on-fail -count=1

echo "ci: all green"
