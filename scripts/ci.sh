#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
#
#   scripts/ci.sh            # from the repo root
#
# Stages:
#   1. gofmt         — no unformatted files
#   2. go vet        — static checks
#   3. go build      — every package compiles
#   4. go test -race — full suite, short mode, race detector on (this is
#                      also the tier-1 race pass over a parallel sweep:
#                      internal/sweep's determinism tests run -workers=8
#                      pools in short mode)
#   5. trace guard   — 89.2 ms flip anchor with tracing disabled, and
#                      zero virtual-time drift with tracing enabled
#   6. guard idle    — same anchor with the supervision guard armed but
#                      idle: the watchdog must be tick-for-tick free
#   7. oracle sweep  — 512-seed differential RCHDroid-vs-stock run on
#                      the parallel sweep engine (GOMAXPROCS workers)
#                      with the metrics registry armed: the canonical
#                      dump lands in ./artifacts/ and the run enforces
#                      the seeds/sec floor (RCH_SEEDS_FLOOR, default
#                      250 — ~10× headroom under the measured ~2–3k)
#   8. fork gate     — the same 512-seed oracle sweep through the device
#                      fork path (-fork: every per-seed world forked from
#                      one settled pre-chaos template): merged report AND
#                      canonical metrics dump must be byte-identical to
#                      stage 7's fresh-build run
#   9. determinism   — 64-seed sequential cross-check: -workers=1 and
#                      -workers=N merged reports AND canonical metric
#                      dumps must be byte-identical
#  10. guarded sweep — 1024-seed guarded-chaos run on the engine: zero
#                      invariant violations, no quarantine/breaker
#                      decision without a preceding injected fault, and
#                      every activity either RCHDroid-equivalent or
#                      exactly stock-equivalent (never a hybrid)
#  11. explore gate  — exhaustive depth-2 schedule-space exploration of
#                      the data-loss corpus (cmd/rchexplore), metrics on
#  12. counterfactual — guard-off runs must reproduce the raw failures
#                      the guard recovers, and guarded verdicts replay
#                      bit-identically
#  13. profile smoke — a 32-seed sweep under -profile-cpu/-profile-heap
#                      must produce non-empty pprof artifacts
#  14. fleet stage   — the real rchserve binary: boot a small fleet over
#                      TCP, storm one device with the panic-on-relaunch
#                      spec (every panic contained + respawned, counters
#                      exact, shards all serving), provoke a deadline
#                      shed, then SIGTERM → clean drain (exit 0) with a
#                      non-empty metrics flush (scripts/fleetprobe is
#                      the wire client)
#  15. replay stage  — trace-driven load: rchreplay generates a seeded
#                      diurnal workload log and replays it through the
#                      real rchserve binary over TCP at 200×, then the
#                      SLO report must carry the production surface
#                      (p50/p95/p99 per op class, machine-readable shed
#                      map + rate, breaker/guard counters) and the
#                      replay's canonical metrics dump must be non-empty
#  16. bench         — scripts/bench.sh -quick (CI-sized scaling curve +
#                      determinism byte-compare of reports and metrics;
#                      written to ./artifacts/ so the committed 512-seed
#                      BENCH_sweep.json and BENCH_replay.json stay
#                      stable)
#
# The sweeps run on cmd/rchsweep: any failing seed (including a
# recovered worker panic, attributed to its seed) exits non-zero and
# prints the exact -oracle.replay=<seed> invocation; -trace-on-fail
# writes the failing seed's Perfetto trace to ./artifacts/.
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> trace overhead guard"
go test ./internal/experiments -run TestTraceOverheadGuard -count=1

echo "==> guard idle anchor"
go test ./internal/experiments -run TestGuardIdleAnchor -count=1

echo "==> oracle sweep (512 seeds, parallel engine, metrics + seeds/sec floor)"
go run ./cmd/rchsweep -mode=oracle -seeds=512 -trace-on-fail \
    -metrics-out artifacts/metrics.oracle.json \
    -min-seeds-per-sec "${RCH_SEEDS_FLOOR:-250}" > artifacts/report.oracle.txt
cat artifacts/report.oracle.txt

echo "==> fork determinism gate (512-seed oracle via template forks, byte-compare vs fresh)"
go run ./cmd/rchsweep -mode=oracle -seeds=512 -fork \
    -metrics-out artifacts/metrics.oracle.fork.json > artifacts/report.oracle.fork.txt
cmp artifacts/report.oracle.txt artifacts/report.oracle.fork.txt
cmp artifacts/metrics.oracle.json artifacts/metrics.oracle.fork.json

echo "==> sequential determinism cross-check (64 seeds, reports + canonical metrics)"
go run ./cmd/rchsweep -mode=oracle -seeds=64 -crosscheck

echo "==> guarded chaos sweep (1024 seeds, parallel engine)"
go run ./cmd/rchsweep -mode=guard -seeds=1024 -trace-on-fail \
    -metrics-out artifacts/metrics.guard.json

echo "==> schedule-space exploration gate (corpus, depth 2, exhaustive, metrics)"
go run ./cmd/rchexplore -depth=2 -metrics-out artifacts/metrics.explore.json

echo "==> guard counterfactual + replay determinism"
go test ./internal/oracle -run 'TestGuardSavesRawFailures|TestGuardDeterministic' -count=1

echo "==> profile smoke (32 seeds, cpu + heap pprof non-empty)"
go run ./cmd/rchsweep -mode=oracle -seeds=32 \
    -profile-cpu artifacts/ci.cpu.pprof -profile-heap artifacts/ci.heap.pprof >/dev/null
test -s artifacts/ci.cpu.pprof || { echo "ci: empty cpu profile" >&2; exit 1; }
test -s artifacts/ci.heap.pprof || { echo "ci: empty heap profile" >&2; exit 1; }

echo "==> fleet stage (rchserve: containment, shedding, clean drain)"
go build -o artifacts/rchserve ./cmd/rchserve
rm -f artifacts/rchserve.addr
# Breaker threshold sits above the probe's storm count on purpose: this
# stage proves containment (panics never take a shard down), not
# quarantine — the breaker ladder has its own tests in internal/serve.
artifacts/rchserve -listen=127.0.0.1:0 -port-file=artifacts/rchserve.addr \
    -shards=2 -deadline=200ms -respawn -breaker-threshold=100 \
    -drain-timeout=30s -metrics-prom artifacts/serve.ci.prom \
    2> artifacts/rchserve.ci.log &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    if [ -s artifacts/rchserve.addr ]; then addr=$(cat artifacts/rchserve.addr); break; fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci: rchserve never wrote its port file" >&2
    cat artifacts/rchserve.ci.log >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
if ! go run ./scripts/fleetprobe -addr "$addr"; then
    echo "ci: fleet probe failed" >&2
    cat artifacts/rchserve.ci.log >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "ci: rchserve drain exited non-zero (want clean drain, exit 0)" >&2
    cat artifacts/rchserve.ci.log >&2
    exit 1
fi
grep -q "clean drain" artifacts/rchserve.ci.log || { echo "ci: rchserve log has no clean drain" >&2; cat artifacts/rchserve.ci.log >&2; exit 1; }
test -s artifacts/serve.ci.prom || { echo "ci: empty serve metrics flush" >&2; exit 1; }

echo "==> replay stage (rchreplay: seeded diurnal trace through rchserve over TCP at 200x)"
go build -o artifacts/rchreplay ./cmd/rchreplay
artifacts/rchreplay -gen artifacts/ci.trace.log -seed 11 -devices 6 -span-ms 3000 -events-per-device 8
rm -f artifacts/rchserve.addr
artifacts/rchserve -listen=127.0.0.1:0 -port-file=artifacts/rchserve.addr \
    -shards=3 -drain-timeout=30s 2> artifacts/rchserve.replay.log &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    if [ -s artifacts/rchserve.addr ]; then addr=$(cat artifacts/rchserve.addr); break; fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci: rchserve never wrote its port file (replay stage)" >&2
    cat artifacts/rchserve.replay.log >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
if ! artifacts/rchreplay -log artifacts/ci.trace.log -addr "$addr" -speed 200 \
    -slo-out artifacts/ci.replay.slo.json -metrics-out artifacts/ci.replay.metrics.json; then
    echo "ci: replay failed" >&2
    cat artifacts/rchserve.replay.log >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "ci: rchserve drain exited non-zero after replay (want clean drain)" >&2
    cat artifacts/rchserve.replay.log >&2
    exit 1
fi
# The SLO report must carry the production surface, machine-readably:
# per-op-class percentiles, the shed map keyed by wire code, the shed
# rate, and the server-side degradation counters.
for field in '"p50_ms"' '"p95_ms"' '"p99_ms"' '"shed"' '"shed_rate"' \
    '"achieved_speed"' '"breaker_opens"' '"guard_quarantines"'; do
    grep -q "$field" artifacts/ci.replay.slo.json \
        || { echo "ci: SLO report missing $field" >&2; cat artifacts/ci.replay.slo.json >&2; exit 1; }
done
grep -q '"replay_log_events_total"' artifacts/ci.replay.metrics.json \
    || { echo "ci: replay canonical metrics missing the log-derived counters" >&2; exit 1; }

echo "==> sweep bench (quick)"
scripts/bench.sh -quick -out artifacts/BENCH_sweep.quick.json -replay-out artifacts/BENCH_replay.quick.json

echo "ci: all green"
