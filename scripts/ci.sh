#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
#
#   scripts/ci.sh            # from the repo root
#
# Stages:
#   1. go vet        — static checks
#   2. go build      — every package compiles
#   3. go test -race — full suite, short mode, race detector on
#   4. oracle sweep  — 64-seed differential RCHDroid-vs-stock run
#
# The oracle sweep is deliberately rerun outside -short so the
# differential harness itself is exercised even in the quick gate; a
# failure prints the exact -oracle.replay=<seed> invocation.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> oracle sweep (64 seeds)"
go test ./internal/oracle -run TestTransparencyOracleSweep -oracle.seeds=64 -count=1

echo "ci: all green"
